package query

// Symbolic evaluation of algebra expressions: the classical §4.3
// baseline (Fourier–Motzkin quantifier elimination) as a terminal for
// the FULL first-order algebra, not just the existential sampling
// fragment. Minus of a projection (¬∃) and Div (∀) compile through
// constraint.Compile — negation pushed through ∃ as ¬∃¬, complements
// expanded per-disjunct, LP pruning after each elimination step —
// while in-fragment expressions reuse their canonical sampling plan
// and merely eliminate its existential coordinates. Either way the
// result is a quantifier-free DNF relation ready for exact volume
// (polytope.RelationVolume), Source() printing, or sampler
// preparation.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/constraint"
)

// SymbolicQuery is an algebra expression compiled for symbolic
// evaluation: the inlined full-FO formula, the output columns and a
// stable cache key. In-fragment expressions carry their canonical plan
// and reuse its key, so structurally equal expressions — however they
// were built — share one symbolic cache entry exactly like they share
// a prepared sampler; full-FO expressions key on a hash of the inlined
// formula (nominal: binder numbering follows the expression tree).
type SymbolicQuery struct {
	// OutVars are the output column names, in order.
	OutVars []string
	// Key is the stable fingerprint runtime caches key symbolic results
	// by: the canonical plan key for in-fragment expressions, a formula
	// hash ("fo:...") otherwise.
	Key string

	f      constraint.Formula
	schema constraint.Schema
	cp     *CanonicalPlan // non-nil when the expression is in the sampling fragment
}

// CompileSymbolic lowers the expression for symbolic evaluation. It
// never returns ErrUnsupported: formulas outside the sampling fragment
// are exactly the ones quantifier elimination exists for.
func (n *Node) CompileSymbolic(db *constraint.Database) (*SymbolicQuery, error) {
	fresh := 0
	f, cols, err := n.compile(db, &fresh)
	if err != nil {
		return nil, err
	}
	sq := &SymbolicQuery{OutVars: append([]string(nil), cols...), f: f, schema: db.Schema}
	plan, err := planInlined(cols, f)
	switch {
	case err == nil:
		sq.cp = Canonicalize(plan)
		sq.Key = sq.cp.Key
	case errors.Is(err, ErrUnsupported):
		// Full first-order: no sampling plan exists; fingerprint the
		// inlined formula instead.
		sq.Key = formulaKey(f, cols)
	default:
		return nil, err
	}
	return sq, nil
}

// SymbolicFromPlan wraps an already-canonicalized in-fragment plan for
// symbolic evaluation, reusing its key. Callers that have paid the
// canonicalization pass (cdb.Expr memoizes it) use this instead of
// CompileSymbolic to avoid planning the same expression twice.
func SymbolicFromPlan(cp *CanonicalPlan) *SymbolicQuery {
	return &SymbolicQuery{
		OutVars: append([]string(nil), cp.Plan.OutVars...),
		Key:     cp.Key,
		cp:      cp,
	}
}

// Formula returns the inlined first-order formula the expression
// denotes — the Source()-printable symbolic form before elimination.
// Nil for queries built with SymbolicFromPlan (the plan IS the form).
func (sq *SymbolicQuery) Formula() constraint.Formula { return sq.f }

// InFragment reports whether the expression also admits a sampling
// plan (no ∀, no negation under ∃).
func (sq *SymbolicQuery) InFragment() bool { return sq.cp != nil }

// Eval runs the symbolic evaluation and returns the quantifier-free
// DNF relation over OutVars, infeasible tuples pruned. In-fragment
// plans eliminate each disjunct's existential coordinates directly;
// full-FO formulas run the complete compile pipeline. The cost is the
// classical doubly-exponential blow-up (experiment E9) — callers cache
// the result.
func (sq *SymbolicQuery) Eval() (*constraint.Relation, error) {
	return sq.EvalCtx(context.Background())
}

// EvalCtx is Eval with cooperative cancellation: ctx is polled at every
// formula node, between eliminated/complemented tuples and between
// elimination rounds, so a cancelled request abandons the (potentially
// doubly-exponential) pass instead of pinning a CPU to completion.
func (sq *SymbolicQuery) EvalCtx(ctx context.Context) (*constraint.Relation, error) {
	rel, _, err := sq.EvalCtxStats(ctx)
	return rel, err
}

// EvalCtxStats is EvalCtx with elimination-effort measurement: how many
// existential coordinates were eliminated per disjunct, how many
// Fourier–Motzkin rounds ran, and how the atom count grew — the
// observed shape of the doubly-exponential cost cliff (experiment E9)
// a cost-based planner must route around. Full-FO expressions (outside
// the sampling fragment) run the compile pipeline, which reports only
// the output side: Rounds stays 0 and AtomsIn counts nothing.
func (sq *SymbolicQuery) EvalCtxStats(ctx context.Context) (*constraint.Relation, ElimStats, error) {
	var interrupt func() error
	if ctx != nil && ctx.Done() != nil {
		interrupt = ctx.Err
	}
	var st ElimStats
	if sq.cp != nil {
		rel, err := sq.cp.evalSymbolic("derived", interrupt, &st)
		return rel, st, err
	}
	rel, err := constraint.CompileInterruptible(sq.f, sq.schema, sq.OutVars, interrupt)
	if err != nil {
		return nil, st, err
	}
	rel.Name = "derived"
	st.Disjuncts = len(rel.Tuples)
	for _, t := range rel.Tuples {
		st.AtomsOut += len(t.Atoms)
	}
	return rel, st, nil
}

// ElimStats measures one symbolic evaluation: the per-disjunct
// eliminated-variable counts, Fourier–Motzkin rounds and atom growth.
type ElimStats struct {
	// Disjuncts is the number of disjuncts evaluated.
	Disjuncts int
	// ElimVars is the total number of existential coordinates
	// eliminated; Rounds the total elimination rounds (one per
	// coordinate per disjunct — each round can square the atom count).
	ElimVars, Rounds int
	// AtomsIn and AtomsOut count constraint atoms before and after
	// elimination (over all disjuncts), the direct observation of the
	// elimination blow-up.
	AtomsIn, AtomsOut int
	// PerDisjunct holds the same measurements per input disjunct.
	PerDisjunct []DisjunctElim
}

// DisjunctElim measures the elimination of one disjunct.
type DisjunctElim struct {
	ExVars, Rounds, AtomsIn, AtomsOut int
}

// formulaKey fingerprints an inlined formula and its output columns
// for the symbolic cache.
func formulaKey(f constraint.Formula, outVars []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|fo|out=%d|", len(outVars))
	for _, v := range outVars {
		h.Write([]byte(v))
		h.Write([]byte{0x1f})
	}
	h.Write([]byte(f.String()))
	return "fo:" + hex.EncodeToString(h.Sum(nil))[:32]
}

// EvalSymbolic materialises the canonical plan as a quantifier-free
// relation: convex disjuncts become tuples verbatim; disjuncts with
// existential coordinates have them eliminated by Fourier–Motzkin
// (with LP redundancy pruning after each step). This is the symbolic
// counterpart of the projection generator — and the exact answer the
// sampling evaluation is measured against.
func (cp *CanonicalPlan) EvalSymbolic(name string) (*constraint.Relation, error) {
	return cp.evalSymbolic(name, nil, nil)
}

// EvalSymbolicStats is EvalSymbolic with per-disjunct elimination
// measurements.
func (cp *CanonicalPlan) EvalSymbolicStats(name string) (*constraint.Relation, ElimStats, error) {
	var st ElimStats
	rel, err := cp.evalSymbolic(name, nil, &st)
	return rel, st, err
}

func (cp *CanonicalPlan) evalSymbolic(name string, interrupt func() error, st *ElimStats) (*constraint.Relation, error) {
	keep := len(cp.Plan.OutVars)
	out := &constraint.Relation{Name: name, Vars: append([]string(nil), cp.Plan.OutVars...)}
	for i, d := range cp.Plan.Disjuncts {
		t := d.Poly.Tuple()
		de := DisjunctElim{ExVars: d.ExVars, AtomsIn: len(t.Atoms)}
		if d.ExVars == 0 {
			out.Tuples = append(out.Tuples, t)
			de.AtomsOut = de.AtomsIn
			recordDisjunct(st, de)
			continue
		}
		dim := t.Dim()
		if dim != keep+d.ExVars {
			return nil, fmt.Errorf("query: disjunct %d dimension %d != %d outputs + %d existential", i, dim, keep, d.ExVars)
		}
		vars := make([]string, dim)
		for j := range vars {
			vars[j] = fmt.Sprintf("c%d", j)
		}
		// Eliminate the trailing existential coordinates highest-first,
		// polling the interrupt between rounds — each round can square
		// the atom count.
		proj := &constraint.Relation{Vars: vars, Tuples: []constraint.Tuple{t}}
		for j := dim - 1; j >= keep; j-- {
			if interrupt != nil {
				if err := interrupt(); err != nil {
					return nil, err
				}
			}
			proj = constraint.Eliminate(proj, j, constraint.EliminateOptions{})
			de.Rounds++
		}
		for _, pt := range proj.Tuples {
			de.AtomsOut += len(pt.Atoms)
		}
		out.Tuples = append(out.Tuples, proj.Tuples...)
		recordDisjunct(st, de)
	}
	return out.PruneEmpty(), nil
}

// recordDisjunct folds one disjunct's measurements into st (nil-safe).
func recordDisjunct(st *ElimStats, de DisjunctElim) {
	if st == nil {
		return
	}
	st.Disjuncts++
	st.ElimVars += de.ExVars
	st.Rounds += de.Rounds
	st.AtomsIn += de.AtomsIn
	st.AtomsOut += de.AtomsOut
	st.PerDisjunct = append(st.PerDisjunct, de)
}
