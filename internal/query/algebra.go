package query

// The relational-algebra IR behind cdb.Expr and the server's /v1/expr
// endpoint: a small closed set of operators — base relations (or named
// queries), selection, intersection, union, difference, projection and
// time slicing — that compiles to the same existential positive Plan the
// formula pipeline produces. Keeping the IR here (rather than in the
// public package) lets every surface share one compiler and one
// canonicalization pass, and therefore one prepared-sampler cache.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
)

// ErrUnknownTarget marks an algebra leaf naming a relation or query the
// database does not declare. Serving layers map it to "not found".
var ErrUnknownTarget = errors.New("query: unknown relation or query")

type nodeOp int

const (
	opRel nodeOp = iota
	opWhere
	opIntersect
	opUnion
	opMinus
	opProject
	opTimeSlice
	opDiv
)

func (o nodeOp) String() string {
	switch o {
	case opRel:
		return "rel"
	case opWhere:
		return "where"
	case opIntersect:
		return "intersect"
	case opUnion:
		return "union"
	case opMinus:
		return "minus"
	case opProject:
		return "project"
	case opTimeSlice:
		return "timeslice"
	case opDiv:
		return "div"
	}
	return "?"
}

// Node is one operator of a lazy relational-algebra expression. Nodes
// are immutable: every combinator returns a fresh node, so expressions
// can share subtrees freely across goroutines.
type Node struct {
	op          nodeOp
	name        string            // opRel
	left, right *Node             // operands
	atoms       []constraint.Atom // opWhere: over the child's columns
	vars        []string          // opProject: columns to keep, in order
	t           float64           // opTimeSlice
}

// NewRel returns the leaf node for a declared relation or named query.
func NewRel(name string) *Node { return &Node{op: opRel, name: name} }

// Where returns the selection σ_atoms(n); each atom is a linear
// constraint over the node's output columns, in order.
func (n *Node) Where(atoms ...constraint.Atom) *Node {
	return &Node{op: opWhere, left: n, atoms: atoms}
}

// Intersect returns n ∩ o (columns of o are positionally identified
// with n's).
func (n *Node) Intersect(o *Node) *Node { return &Node{op: opIntersect, left: n, right: o} }

// Union returns n ∪ o.
func (n *Node) Union(o *Node) *Node { return &Node{op: opUnion, left: n, right: o} }

// Minus returns n \ o. The right operand must be quantifier-free (the
// sampling fragment admits negation on atoms, not under ∃).
func (n *Node) Minus(o *Node) *Node { return &Node{op: opMinus, left: n, right: o} }

// Project returns π_vars(n): keep the named columns in the given order,
// existentially projecting the rest away.
func (n *Node) Project(vars ...string) *Node {
	return &Node{op: opProject, left: n, vars: append([]string(nil), vars...)}
}

// TimeSlice returns the t = t0 snapshot of a space-time expression: the
// time column (the column named "t", or the last one) is substituted by
// t0 and dropped from the output.
func (n *Node) TimeSlice(t0 float64) *Node { return &Node{op: opTimeSlice, left: n, t: t0} }

// Div returns the relational division n ÷ o: the prefixes x over n's
// leading columns such that (x, y) ∈ n for EVERY y ∈ o. o's columns are
// identified positionally with n's trailing columns, and the result is
// compiled as the universally quantified formula ∀y (o(y) → n(x, y)).
// Division is outside the existential sampling fragment — evaluate it
// with the symbolic terminal (CompileSymbolic / Expr.EvalSymbolic).
func (n *Node) Div(o *Node) *Node { return &Node{op: opDiv, left: n, right: o} }

// String renders the expression tree for diagnostics.
func (n *Node) String() string {
	switch n.op {
	case opRel:
		return n.name
	case opWhere:
		return fmt.Sprintf("σ[%d](%s)", len(n.atoms), n.left)
	case opIntersect:
		return fmt.Sprintf("(%s ∩ %s)", n.left, n.right)
	case opUnion:
		return fmt.Sprintf("(%s ∪ %s)", n.left, n.right)
	case opMinus:
		return fmt.Sprintf("(%s \\ %s)", n.left, n.right)
	case opProject:
		return fmt.Sprintf("π%v(%s)", n.vars, n.left)
	case opTimeSlice:
		return fmt.Sprintf("slice[t=%g](%s)", n.t, n.left)
	case opDiv:
		return fmt.Sprintf("(%s ÷ %s)", n.left, n.right)
	}
	return "?"
}

// Compile lowers the expression to an existential positive Plan over the
// database: leaves are inlined to their DNF bodies, operators become
// formula connectives (∩ → ∧, ∪ → ∨, \ → ∧¬, π → ∃, slice →
// substitution) and the shared pipeline normalises the result. Callers
// canonicalize the returned plan for execution and cache keying.
func (n *Node) Compile(db *constraint.Database) (*Plan, error) {
	fresh := 0
	f, cols, err := n.compile(db, &fresh)
	if err != nil {
		return nil, err
	}
	return planInlined(cols, f)
}

// Columns resolves the output column names of the expression without
// running the full plan pipeline.
func (n *Node) Columns(db *constraint.Database) ([]string, error) {
	fresh := 0
	_, cols, err := n.compile(db, &fresh)
	return cols, err
}

// compile returns the inlined formula (atoms, ∧, ∨, ∃ only — predicates
// resolved, no negation except what Minus introduces) plus the output
// column names. fresh numbers capture-avoiding renames.
func (n *Node) compile(db *constraint.Database, fresh *int) (constraint.Formula, []string, error) {
	switch n.op {
	case opRel:
		if rel, ok := db.Relation(n.name); ok {
			f, err := inline(constraint.Pred{Name: n.name, Args: rel.Vars}, db.Schema)
			return f, rel.Vars, err
		}
		if q, ok := db.Query(n.name); ok {
			f, err := inline(q.F, db.Schema)
			return f, q.Vars, err
		}
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownTarget, n.name)
	case opWhere:
		f, cols, err := n.left.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		fs := []constraint.Formula{f}
		for _, a := range n.atoms {
			if a.Dim() != len(cols) {
				return nil, nil, fmt.Errorf("query: Where atom arity %d over %d column(s)", a.Dim(), len(cols))
			}
			fs = append(fs, constraint.AtomF{Vars: cols, Atom: a})
		}
		return constraint.And{Fs: fs}, cols, nil
	case opIntersect, opUnion, opMinus:
		l, cols, err := n.left.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		r, rcols, err := n.right.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		if len(rcols) != len(cols) {
			return nil, nil, fmt.Errorf("query: %s arity mismatch: %d vs %d columns", n.op, len(cols), len(rcols))
		}
		// Relational operators are positional: identify the right
		// operand's columns with the left's by renaming its free
		// variables (capture-avoiding — binders inside r that collide
		// with a target name are freshened first).
		ren := map[string]string{}
		for i, v := range rcols {
			if v != cols[i] {
				ren[v] = cols[i]
			}
		}
		if len(ren) > 0 {
			r = renameFree(r, ren, fresh)
		}
		switch n.op {
		case opIntersect:
			return constraint.And{Fs: []constraint.Formula{l, r}}, cols, nil
		case opUnion:
			return constraint.Or{Fs: []constraint.Formula{l, r}}, cols, nil
		default:
			return constraint.And{Fs: []constraint.Formula{l, constraint.Not{F: r}}}, cols, nil
		}
	case opProject:
		f, cols, err := n.left.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		have := map[string]bool{}
		for _, v := range cols {
			have[v] = true
		}
		keep := map[string]bool{}
		for _, v := range n.vars {
			if !have[v] {
				return nil, nil, fmt.Errorf("query: Project column %q not among %v", v, cols)
			}
			if keep[v] {
				return nil, nil, fmt.Errorf("query: Project column %q repeated", v)
			}
			keep[v] = true
		}
		var drop []string
		for _, v := range cols {
			if !keep[v] {
				drop = append(drop, v)
			}
		}
		if len(drop) > 0 {
			f = constraint.Exists{Vars: drop, F: f}
		}
		return f, append([]string(nil), n.vars...), nil
	case opDiv:
		l, cols, err := n.left.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		r, rcols, err := n.right.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		if len(rcols) == 0 || len(rcols) >= len(cols) {
			return nil, nil, fmt.Errorf("query: Div divisor arity %d must be positive and below the dividend's %d", len(rcols), len(cols))
		}
		k := len(cols) - len(rcols)
		yvars := append([]string(nil), cols[k:]...)
		// Identify the divisor's columns with the dividend's trailing
		// columns, then universally quantify them: ∀y (¬o(y) ∨ n(x, y)).
		ren := map[string]string{}
		for i, v := range rcols {
			if v != yvars[i] {
				ren[v] = yvars[i]
			}
		}
		if len(ren) > 0 {
			r = renameFree(r, ren, fresh)
		}
		body := constraint.Or{Fs: []constraint.Formula{constraint.Not{F: r}, l}}
		return constraint.ForAll{Vars: yvars, F: body}, append([]string(nil), cols[:k]...), nil
	case opTimeSlice:
		f, cols, err := n.left.compile(db, fresh)
		if err != nil {
			return nil, nil, err
		}
		if len(cols) < 2 {
			return nil, nil, fmt.Errorf("query: TimeSlice needs at least 2 columns, have %v", cols)
		}
		tcol := len(cols) - 1
		for i, v := range cols {
			if v == "t" {
				tcol = i
				break
			}
		}
		out := make([]string, 0, len(cols)-1)
		out = append(out, cols[:tcol]...)
		out = append(out, cols[tcol+1:]...)
		return substConst(f, cols[tcol], n.t), out, nil
	}
	return nil, nil, fmt.Errorf("query: unknown algebra node op %d", n.op)
}

// renameFree renames free variable occurrences per ren, respecting
// binder shadowing. A binder whose name collides with a rename target
// is itself freshened (so the renamed variable cannot be captured).
func renameFree(f constraint.Formula, ren map[string]string, fresh *int) constraint.Formula {
	targets := map[string]bool{}
	for _, to := range ren {
		targets[to] = true
	}
	switch g := f.(type) {
	case constraint.AtomF:
		vars := make([]string, len(g.Vars))
		for i, v := range g.Vars {
			if nv, ok := ren[v]; ok {
				vars[i] = nv
			} else {
				vars[i] = v
			}
		}
		return constraint.AtomF{Vars: vars, Atom: g.Atom}
	case constraint.Pred:
		args := make([]string, len(g.Args))
		for i, v := range g.Args {
			if nv, ok := ren[v]; ok {
				args[i] = nv
			} else {
				args[i] = v
			}
		}
		return constraint.Pred{Name: g.Name, Args: args}
	case constraint.Not:
		return constraint.Not{F: renameFree(g.F, ren, fresh)}
	case constraint.And:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = renameFree(sub, ren, fresh)
		}
		return constraint.And{Fs: fs}
	case constraint.Or:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = renameFree(sub, ren, fresh)
		}
		return constraint.Or{Fs: fs}
	case constraint.Exists:
		vars, body := renameUnderBinder(g.Vars, g.F, ren, targets, fresh)
		return constraint.Exists{Vars: vars, F: body}
	case constraint.ForAll:
		// ForAll is reachable in accepted (symbolic) paths since Div —
		// it needs the same shadowing and binder freshening as Exists,
		// or a renamed free variable gets captured by the quantifier.
		vars, body := renameUnderBinder(g.Vars, g.F, ren, targets, fresh)
		return constraint.ForAll{Vars: vars, F: body}
	}
	return f
}

// renameUnderBinder applies a free-variable renaming below a quantifier
// binding vars: binders shadow rename sources, and a binder colliding
// with a rename target is freshened so the incoming name cannot be
// captured.
func renameUnderBinder(bound []string, f constraint.Formula, ren map[string]string, targets map[string]bool, fresh *int) ([]string, constraint.Formula) {
	inner := map[string]string{}
	for k, v := range ren {
		inner[k] = v
	}
	vars := make([]string, len(bound))
	for i, v := range bound {
		vars[i] = v
		delete(inner, v) // binder shadows a free rename source
		if targets[v] {
			// Binder collides with a name being introduced: freshen it.
			*fresh++
			nv := fmt.Sprintf("%s!r%d", v, *fresh)
			vars[i] = nv
			inner[v] = nv
		}
	}
	return vars, renameFree(f, inner, fresh)
}

// substConst substitutes the constant value for every free occurrence of
// name: the coefficient is folded into the atom's bound and zeroed, so
// the variable drops out of the polytope frame. Binders shadow.
func substConst(f constraint.Formula, name string, value float64) constraint.Formula {
	switch g := f.(type) {
	case constraint.AtomF:
		hit := false
		for i, v := range g.Vars {
			if v == name && g.Atom.Coef[i] != 0 {
				hit = true
				break
			}
		}
		if !hit {
			return g
		}
		coef := append(g.Atom.Coef[:0:0], g.Atom.Coef...)
		b := g.Atom.B
		for i, v := range g.Vars {
			if v == name {
				b -= coef[i] * value
				coef[i] = 0
			}
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			// Degenerate substitution: the folded bound overflowed, so the
			// atom is now a constant truth value. b = -Inf means NO point
			// satisfies a·x <= -Inf — the conjunct is empty, not the whole
			// space — and a NaN fold (slicing at t = NaN, or cancelling
			// overflows) compares false in the denotation, so both map to
			// trivially-false. Collapse to canonical constant atoms so no
			// ±Inf/NaN bound leaks into the LP layer.
			cb := 1.0 // +Inf: trivially true
			if math.IsInf(b, -1) || math.IsNaN(b) {
				cb = -1 // unsatisfiable: trivially false
			}
			return constraint.AtomF{Vars: g.Vars, Atom: constraint.Atom{
				Coef: make(linalg.Vector, len(coef)), B: cb, Strict: g.Atom.Strict}}
		}
		return constraint.AtomF{Vars: g.Vars, Atom: constraint.Atom{Coef: coef, B: b, Strict: g.Atom.Strict}}
	case constraint.Not:
		return constraint.Not{F: substConst(g.F, name, value)}
	case constraint.And:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = substConst(sub, name, value)
		}
		return constraint.And{Fs: fs}
	case constraint.Or:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = substConst(sub, name, value)
		}
		return constraint.Or{Fs: fs}
	case constraint.Exists:
		for _, v := range g.Vars {
			if v == name {
				return g // shadowed
			}
		}
		return constraint.Exists{Vars: g.Vars, F: substConst(g.F, name, value)}
	case constraint.ForAll:
		for _, v := range g.Vars {
			if v == name {
				return g
			}
		}
		return constraint.ForAll{Vars: g.Vars, F: substConst(g.F, name, value)}
	}
	return f
}
