package query

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/walk"
)

func fastOpts() core.Options {
	return core.Options{
		Params: core.Params{Gamma: 0.25, Eps: 0.3, Delta: 0.1},
		Walk:   walk.HitAndRun,
	}
}

func mustParse(t *testing.T, src string) *constraint.Database {
	t.Helper()
	db, err := constraint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEvalSymbolicMatchesParser(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 2, 0 <= y <= 2 };
		query Q(x) := exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 1)
	rel, err := e.EvalSymbolic(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(linalg.Vector{1}) || rel.Contains(linalg.Vector{3}) {
		t.Error("symbolic projection wrong")
	}
}

func TestPlanConvexQuery(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x, y) := S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 2)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 1 || plan.Disjuncts[0].ExVars != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Disjuncts[0].Poly.Dim() != 2 {
		t.Error("disjunct dimension wrong")
	}
}

func TestPlanUnionQuery(t *testing.T) {
	db := mustParse(t, `
		rel S(x) := { 0 <= x <= 1 } | { 5 <= x <= 6 };
		query Q(x) := S(x);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 3)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(plan.Disjuncts))
	}
}

func TestPlanExistentialQuery(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x) := exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 4)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 1 || plan.Disjuncts[0].ExVars != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Disjuncts[0].Poly.Dim() != 2 {
		t.Error("existential disjunct must be 2-D before projection")
	}
}

func TestPlanDropsUnusedExistentials(t *testing.T) {
	// ∃z (S(x)) with z unused: disjunct must stay 1-D convex.
	db := mustParse(t, `
		rel S(x) := { 0 <= x <= 1 };
		query Q(x) := exists z. S(x);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 5)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 1 || plan.Disjuncts[0].ExVars != 0 {
		t.Fatalf("unused existential must be dropped: %+v", plan.Disjuncts)
	}
}

func TestPlanNegatedAtomSupported(t *testing.T) {
	// Negated atoms stay linear: !(x <= 0.5) & S(x).
	db := mustParse(t, `
		rel S(x) := { 0 <= x <= 1 };
		query Q(x) := S(x) & !(x <= 1/2);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 6)
	obs, err := e.Observable(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x, err := obs.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 0.5-1e-6 || x[0] > 1+1e-6 {
			t.Fatalf("sample %v outside (0.5, 1]", x)
		}
	}
}

func TestPlanRejectsUniversal(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x) := forall y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 7)
	if _, err := e.NewPlan(q); !errors.Is(err, ErrUnsupported) {
		t.Errorf("universal quantifier error = %v, want ErrUnsupported", err)
	}
}

func TestPlanRejectsNegatedExists(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x) := !(exists y. S(x, y));
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 8)
	if _, err := e.NewPlan(q); !errors.Is(err, ErrUnsupported) {
		t.Errorf("negated exists error = %v, want ErrUnsupported", err)
	}
}

func TestEstimateVolumeMatchesSymbolic(t *testing.T) {
	// Volume of ∃y S(x,y) for the triangle: the projection is [0,1],
	// symbolic length 1; the estimate must agree within the ratio.
	db := mustParse(t, `
		rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
		query Q(x) := exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 9)
	est, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	// Symbolic ground truth.
	rel, err := e.EvalSymbolic(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.ExactVolume(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, exact, 0.5) {
		t.Errorf("estimated %g vs symbolic %g", est, exact)
	}
}

func TestEstimateVolumeUnionQuery(t *testing.T) {
	db := mustParse(t, `
		rel A(x, y) := { 0 <= x <= 2, 0 <= y <= 2 };
		rel B(x, y) := { 1 <= x <= 3, 1 <= y <= 3 };
		query U(x, y) := A(x, y) | B(x, y);
	`)
	q, _ := db.Query("U")
	e := NewEngine(db.Schema, fastOpts(), 10)
	est, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, 7, 0.4) {
		t.Errorf("union volume = %g, want ~7", est)
	}
}

func TestEstimateVolumeConjunctionOfRelations(t *testing.T) {
	// A ∧ B as a conjunctive plan: atoms merge into one polytope —
	// no poly-relatedness issue arises for conjunctions of atoms.
	db := mustParse(t, `
		rel A(x, y) := { 0 <= x <= 2, 0 <= y <= 2 };
		rel B(x, y) := { 1 <= x <= 3, 1 <= y <= 3 };
		query I(x, y) := A(x, y) & B(x, y);
	`)
	q, _ := db.Query("I")
	e := NewEngine(db.Schema, fastOpts(), 11)
	est, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, 1, 0.4) {
		t.Errorf("conjunction volume = %g, want ~1", est)
	}
}

func TestEstimateMeanAggregate(t *testing.T) {
	// E[x] over the unit square is 0.5 — the aggregate-query use case.
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x, y) := S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 12)
	mean, err := e.EstimateMean(q, func(x linalg.Vector) float64 { return x[0] }, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("E[x] = %g, want ~0.5", mean)
	}
}

func TestReconstructQuery(t *testing.T) {
	// Reconstruct ∃y S(x, z, y) — the projected square — via
	// Algorithm 5 and validate membership.
	db := mustParse(t, `
		rel S(x, z, y) := { 0 <= x <= 1, 0 <= z <= 1, 0 <= y <= 1, x + y + z <= 2 };
		query Q(x, z) := exists y. S(x, z, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 13)
	est, err := e.Reconstruct(q, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Hulls) != 1 {
		t.Fatalf("hulls = %d, want 1", len(est.Hulls))
	}
	// The projection is the whole unit square (y=0 always works).
	if !est.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("reconstruction must contain the square centre")
	}
	if est.Contains(linalg.Vector{1.5, 0.5}) {
		t.Error("reconstruction must exclude outside points")
	}
}

func TestObservableEmptyQueryRejected(t *testing.T) {
	db := mustParse(t, `
		rel S(x) := { 0 <= x <= 1 };
		query Q(x) := S(x) & x >= 2;
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 14)
	if _, err := e.Observable(q); err == nil {
		t.Error("empty query must be rejected")
	}
}

func TestObservableUnknownRelation(t *testing.T) {
	q := constraint.Query{Name: "Q", Vars: []string{"x"},
		F: constraint.Pred{Name: "Missing", Args: []string{"x"}}}
	e := NewEngine(constraint.Schema{}, fastOpts(), 15)
	if _, err := e.Observable(q); err == nil {
		t.Error("unknown relation must be rejected")
	}
}

func TestPlanFreeVariableNotInOutput(t *testing.T) {
	q := constraint.Query{Name: "Q", Vars: []string{"x"},
		F: constraint.AtomF{Vars: []string{"x", "y"}, Atom: constraint.NewAtom(linalg.Vector{1, 1}, 1, false)}}
	e := NewEngine(constraint.Schema{}, fastOpts(), 16)
	if _, err := e.NewPlan(q); err == nil {
		t.Error("free variable outside outputs must be rejected")
	}
}

func TestPlanDescribe(t *testing.T) {
	db := mustParse(t, `
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x) := exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 20)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"union combinator", "projection generator", "R^2"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q in %q", want, desc)
		}
	}
}

func TestUnionOfProjectedDisjuncts(t *testing.T) {
	// A query mixing a plain convex disjunct with an ∃-projected one:
	// the plan must produce one Convex and one Projection member under
	// a Union, and the volume must match the symbolic ground truth.
	db := mustParse(t, `
		rel A(x) := { 5 <= x <= 6 };
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1, x + y <= 3/2 };
		query Q(x) := A(x) | exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 21)
	plan, err := e.NewPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(plan.Disjuncts))
	}
	var exCounts []int
	for _, d := range plan.Disjuncts {
		exCounts = append(exCounts, d.ExVars)
	}
	if !(exCounts[0] == 0 && exCounts[1] == 1 || exCounts[0] == 1 && exCounts[1] == 0) {
		t.Errorf("expected one convex and one projected disjunct, got ExVars=%v", exCounts)
	}
	// Symbolic ground truth: [5,6] ∪ [0,1] has length 2.
	est, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, 2, 0.5) {
		t.Errorf("mixed-plan volume = %g, want ~2", est)
	}
	// Sampling must cover both components.
	obs, err := e.Observable(q)
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for i := 0; i < 400; i++ {
		x, err := obs.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 3 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("union of mixed disjuncts missed a component: low=%d high=%d", low, high)
	}
}

func TestSamplingVsSymbolicProjectionAgreement(t *testing.T) {
	// Deeper pipeline: ∃y,z chained boxes; compare sampled volume to
	// symbolic Fourier–Motzkin ground truth.
	db := mustParse(t, `
		rel R(x, y, z) := { 0 <= x <= 1, x <= y, y <= x + 1, 0 <= z <= y, y <= 2 };
		query Q(x) := exists y, z. R(x, y, z);
	`)
	q, _ := db.Query("Q")
	e := NewEngine(db.Schema, fastOpts(), 17)
	rel, err := e.EvalSymbolic(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.ExactVolume(rel)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, exact, 0.5) {
		t.Errorf("sampled %g vs symbolic %g", est, exact)
	}
}
