// Package query evaluates FO+LIN queries over a constraint database two
// ways:
//
//   - Symbolically (EvalSymbolic): predicate inlining, normalisation and
//     Fourier–Motzkin quantifier elimination — the classical constraint
//     database evaluation whose cost explodes with the number of
//     eliminated variables.
//   - By sampling (Observable / EstimateVolume / Reconstruct): the
//     paper's approach. The formula is normalised into an existential
//     positive plan — a disjunction of (conjunction of atoms, ∃-vars)
//     disjuncts — and mapped onto the core combinators: DFK generators
//     for conjunctions, the projection generator for ∃, the union
//     generator across disjuncts, and per-disjunct hulls for shape
//     reconstruction (Algorithm 5).
package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/reconstruct"
	"repro/internal/rng"
)

// ErrUnsupported is returned for formulas outside the sampling fragment
// (universal quantification, or negation over quantifiers). The paper's
// guaranteed reconstruction covers existential positive formulas
// (Theorem 4.4); negation on atoms is fine since a negated linear atom
// is again a linear atom.
var ErrUnsupported = errors.New("query: formula outside the existential sampling fragment")

// Engine evaluates queries against a schema.
type Engine struct {
	Schema constraint.Schema
	Opts   core.Options
	R      *rng.RNG
}

// NewEngine returns an engine with the given schema, options and seed.
func NewEngine(schema constraint.Schema, opts core.Options, seed uint64) *Engine {
	return &Engine{Schema: schema, Opts: opts, R: rng.New(seed)}
}

// EvalSymbolic compiles the query into a generalized relation by
// quantifier elimination — the baseline the sampling evaluation is
// measured against (experiment E9).
func (e *Engine) EvalSymbolic(q constraint.Query) (*constraint.Relation, error) {
	rel, err := constraint.Compile(q.F, e.Schema, q.Vars)
	if err != nil {
		return nil, err
	}
	rel.Name = q.Name
	return rel, nil
}

// Plan is the sampling execution plan: a disjunction of convex-or-
// projected disjuncts over the query's output coordinates.
type Plan struct {
	OutVars   []string
	Disjuncts []PlanDisjunct
}

// PlanDisjunct is one ϕ_i: a polytope over OutVars ∪ ExVars coordinates,
// where the first len(OutVars) coordinates are the outputs and the
// remaining ones are existentially projected away.
type PlanDisjunct struct {
	Poly   *polytope.Polytope
	ExVars int // number of trailing existential coordinates
}

// Describe renders the plan for humans: one line per disjunct with its
// generator kind (the paper's combinator), dimensions and constraint
// counts.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sampling plan over (%s): %d disjunct(s) under the union combinator\n",
		strings.Join(p.OutVars, ", "), len(p.Disjuncts))
	for i, d := range p.Disjuncts {
		kind := "DFK convex generator"
		if d.ExVars > 0 {
			kind = fmt.Sprintf("projection generator (Algorithm 2, %d coordinate(s) eliminated)", d.ExVars)
		}
		fmt.Fprintf(&sb, "  disjunct %d: %s — %d constraints in R^%d\n",
			i, kind, d.Poly.Rows(), d.Poly.Dim())
	}
	return sb.String()
}

// NewPlan normalises the query formula into an existential positive
// plan: inline predicates, push negation onto atoms, distribute to DNF
// and float each disjunct's existential variables.
func (e *Engine) NewPlan(q constraint.Query) (*Plan, error) {
	f, err := inline(q.F, e.Schema)
	if err != nil {
		return nil, err
	}
	return planInlined(q.Vars, f)
}

// planInlined runs the plan pipeline on an already-inlined formula
// (predicates replaced by their DNF bodies): negation pushdown, alpha
// renaming of binders, DNF normalisation and per-disjunct polytope
// layout. Shared by NewPlan and the algebra compiler.
func planInlined(outVars []string, f constraint.Formula) (*Plan, error) {
	f, err := toNNF(f, false)
	if err != nil {
		return nil, err
	}
	// Alpha-rename binders, then normalise.
	ctr := 0
	f = alphaRenameLocal(f, map[string]string{}, &ctr)
	ds, err := normalize(f)
	if err != nil {
		return nil, err
	}
	plan := &Plan{OutVars: outVars}
	for _, d := range ds {
		pd, ok, err := d.toPolytope(outVars)
		if err != nil {
			return nil, err
		}
		if ok {
			plan.Disjuncts = append(plan.Disjuncts, pd)
		}
	}
	return plan, nil
}

// Observable builds the paper's compositional generator for the query:
// per-disjunct DFK or projection generators under the union combinator.
func (e *Engine) Observable(q constraint.Query) (core.Observable, error) {
	plan, err := e.NewPlan(q)
	if err != nil {
		return nil, err
	}
	return e.observableFromPlan(plan, q.Name)
}

// ObservableFromPlan builds the compositional generator directly from a
// plan — the entry point for pre-planned (and canonicalized) algebra
// expressions, which skip the per-call normalisation pass.
func (e *Engine) ObservableFromPlan(plan *Plan) (core.Observable, error) {
	return e.observableFromPlan(plan, "expression")
}

func (e *Engine) observableFromPlan(plan *Plan, name string) (core.Observable, error) {
	var members []core.Observable
	for i, d := range plan.Disjuncts {
		obs, err := e.disjunctObservable(d)
		if err != nil {
			if errors.Is(err, core.ErrNotWellBounded) {
				continue // zero-measure disjunct
			}
			return nil, fmt.Errorf("query: disjunct %d: %w", i, err)
		}
		members = append(members, obs)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("query: %s defines an empty (or zero-measure) set", name)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return core.NewUnion(members, e.R.Split(), e.Opts)
}

func (e *Engine) disjunctObservable(d PlanDisjunct) (core.Observable, error) {
	if d.ExVars == 0 {
		return core.NewConvexPolytope(d.Poly, e.R.Split(), e.Opts)
	}
	keep := make([]int, d.Poly.Dim()-d.ExVars)
	for i := range keep {
		keep[i] = i
	}
	return core.NewProjection(d.Poly, keep, e.R.Split(), e.Opts)
}

// EstimateVolume returns the sampling-based volume of the query result.
func (e *Engine) EstimateVolume(q constraint.Query) (float64, error) {
	obs, err := e.Observable(q)
	if err != nil {
		return 0, err
	}
	return obs.Volume()
}

// EstimateVolumeFromPlan returns the sampling-based volume directly
// from a plan.
func (e *Engine) EstimateVolumeFromPlan(plan *Plan) (float64, error) {
	obs, err := e.ObservableFromPlan(plan)
	if err != nil {
		return 0, err
	}
	return obs.Volume()
}

// EstimateMean estimates E[f(x)] for x uniform on the query result — the
// aggregate-query use case of the paper's introduction (statistical
// analysis and approximate aggregation in GIS workloads).
func (e *Engine) EstimateMean(q constraint.Query, f func(linalg.Vector) float64, n int) (float64, error) {
	obs, err := e.Observable(q)
	if err != nil {
		return 0, err
	}
	var sum float64
	got := 0
	for i := 0; i < n; i++ {
		x, err := obs.Sample()
		if err != nil {
			continue
		}
		sum += f(x)
		got++
	}
	if got == 0 {
		return 0, core.ErrGeneratorFailed
	}
	return sum / float64(got), nil
}

// Reconstruct runs Algorithm 5 on the query: per-disjunct hulls of n
// samples each, unioned.
func (e *Engine) Reconstruct(q constraint.Query, n int) (*reconstruct.SetEstimate, error) {
	plan, err := e.NewPlan(q)
	if err != nil {
		return nil, err
	}
	return e.ReconstructFromPlan(plan, n)
}

// ReconstructFromPlan runs Algorithm 5 directly on a plan.
func (e *Engine) ReconstructFromPlan(plan *Plan, n int) (*reconstruct.SetEstimate, error) {
	var ds []reconstruct.Disjunct
	for _, d := range plan.Disjuncts {
		rd := reconstruct.Disjunct{Tuples: []constraint.Tuple{d.Poly.Tuple()}}
		if d.ExVars > 0 {
			keep := make([]int, d.Poly.Dim()-d.ExVars)
			for i := range keep {
				keep[i] = i
			}
			rd.Keep = keep
		}
		ds = append(ds, rd)
	}
	return reconstruct.EstimateExistentialPositive(ds, n, e.R.Split(), e.Opts)
}

// ---- normalisation ----

// inline replaces predicates by their schema definitions (DNF of atoms).
func inline(f constraint.Formula, schema constraint.Schema) (constraint.Formula, error) {
	switch g := f.(type) {
	case constraint.AtomF:
		return g, nil
	case constraint.Pred:
		rel, ok := schema[g.Name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", g.Name)
		}
		if len(g.Args) != rel.Arity() {
			return nil, fmt.Errorf("query: %s arity %d applied to %d args", g.Name, rel.Arity(), len(g.Args))
		}
		var disj []constraint.Formula
		for _, t := range rel.Tuples {
			var conj []constraint.Formula
			for _, a := range t.Atoms {
				conj = append(conj, constraint.AtomF{Vars: g.Args, Atom: a})
			}
			if len(conj) == 0 {
				conj = append(conj, trueAtom(g.Args))
			}
			disj = append(disj, constraint.And{Fs: conj})
		}
		if len(disj) == 0 {
			return falseAtom(), nil
		}
		return constraint.Or{Fs: disj}, nil
	case constraint.Not:
		inner, err := inline(g.F, schema)
		if err != nil {
			return nil, err
		}
		return constraint.Not{F: inner}, nil
	case constraint.And:
		fs, err := inlineAll(g.Fs, schema)
		return constraint.And{Fs: fs}, err
	case constraint.Or:
		fs, err := inlineAll(g.Fs, schema)
		return constraint.Or{Fs: fs}, err
	case constraint.Exists:
		inner, err := inline(g.F, schema)
		if err != nil {
			return nil, err
		}
		return constraint.Exists{Vars: g.Vars, F: inner}, nil
	case constraint.ForAll:
		inner, err := inline(g.F, schema)
		if err != nil {
			return nil, err
		}
		return constraint.ForAll{Vars: g.Vars, F: inner}, nil
	default:
		return nil, fmt.Errorf("query: unknown formula node %T", f)
	}
}

func inlineAll(fs []constraint.Formula, schema constraint.Schema) ([]constraint.Formula, error) {
	out := make([]constraint.Formula, len(fs))
	for i, f := range fs {
		g, err := inline(f, schema)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}

func trueAtom(vars []string) constraint.Formula {
	if len(vars) == 0 {
		vars = []string{"x"}
	}
	coef := make(linalg.Vector, 1)
	return constraint.AtomF{Vars: vars[:1], Atom: constraint.NewAtom(coef, 1, false)}
}

func falseAtom() constraint.Formula {
	return constraint.AtomF{Vars: []string{"x"}, Atom: constraint.NewAtom(linalg.Vector{0}, -1, false)}
}

// toNNF pushes negation onto atoms. neg tracks an outstanding negation.
// Quantifiers under an effective negation leave the supported fragment.
func toNNF(f constraint.Formula, neg bool) (constraint.Formula, error) {
	switch g := f.(type) {
	case constraint.AtomF:
		if neg {
			return constraint.AtomF{Vars: g.Vars, Atom: g.Atom.Negate()}, nil
		}
		return g, nil
	case constraint.Not:
		return toNNF(g.F, !neg)
	case constraint.And:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			var err error
			fs[i], err = toNNF(sub, neg)
			if err != nil {
				return nil, err
			}
		}
		if neg {
			return constraint.Or{Fs: fs}, nil
		}
		return constraint.And{Fs: fs}, nil
	case constraint.Or:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			var err error
			fs[i], err = toNNF(sub, neg)
			if err != nil {
				return nil, err
			}
		}
		if neg {
			return constraint.And{Fs: fs}, nil
		}
		return constraint.Or{Fs: fs}, nil
	case constraint.Exists:
		if neg {
			return nil, fmt.Errorf("%w: negated existential quantifier", ErrUnsupported)
		}
		inner, err := toNNF(g.F, false)
		if err != nil {
			return nil, err
		}
		return constraint.Exists{Vars: g.Vars, F: inner}, nil
	case constraint.ForAll:
		return nil, fmt.Errorf("%w: universal quantifier", ErrUnsupported)
	case constraint.Pred:
		return nil, errors.New("query: internal: predicate survived inlining")
	default:
		return nil, fmt.Errorf("query: unknown formula node %T", f)
	}
}

// alphaRenameLocal gives every binder a fresh name.
func alphaRenameLocal(f constraint.Formula, env map[string]string, ctr *int) constraint.Formula {
	switch g := f.(type) {
	case constraint.AtomF:
		vars := make([]string, len(g.Vars))
		for i, v := range g.Vars {
			if nv, ok := env[v]; ok {
				vars[i] = nv
			} else {
				vars[i] = v
			}
		}
		return constraint.AtomF{Vars: vars, Atom: g.Atom}
	case constraint.And:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = alphaRenameLocal(sub, env, ctr)
		}
		return constraint.And{Fs: fs}
	case constraint.Or:
		fs := make([]constraint.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = alphaRenameLocal(sub, env, ctr)
		}
		return constraint.Or{Fs: fs}
	case constraint.Exists:
		inner := make(map[string]string, len(env)+len(g.Vars))
		for k, v := range env {
			inner[k] = v
		}
		fresh := make([]string, len(g.Vars))
		for i, v := range g.Vars {
			*ctr++
			fresh[i] = fmt.Sprintf("%s!%d", v, *ctr)
			inner[v] = fresh[i]
		}
		return constraint.Exists{Vars: fresh, F: alphaRenameLocal(g.F, inner, ctr)}
	default:
		return f
	}
}

// disjunct accumulates atoms (over named variables) and existential
// variable names during normalisation.
type disjunct struct {
	atoms  []constraint.AtomF
	exVars map[string]bool
}

func (d disjunct) clone() disjunct {
	nd := disjunct{exVars: map[string]bool{}}
	nd.atoms = append(nd.atoms, d.atoms...)
	for v := range d.exVars {
		nd.exVars[v] = true
	}
	return nd
}

// normalize distributes the NNF formula into existential positive DNF.
// Alpha renaming makes hoisting ∃ out of ∧ sound.
func normalize(f constraint.Formula) ([]disjunct, error) {
	switch g := f.(type) {
	case constraint.AtomF:
		return []disjunct{{atoms: []constraint.AtomF{g}, exVars: map[string]bool{}}}, nil
	case constraint.Or:
		var out []disjunct
		for _, sub := range g.Fs {
			ds, err := normalize(sub)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
		return out, nil
	case constraint.And:
		acc := []disjunct{{exVars: map[string]bool{}}}
		for _, sub := range g.Fs {
			ds, err := normalize(sub)
			if err != nil {
				return nil, err
			}
			var next []disjunct
			for _, a := range acc {
				for _, b := range ds {
					m := a.clone()
					m.atoms = append(m.atoms, b.atoms...)
					for v := range b.exVars {
						m.exVars[v] = true
					}
					next = append(next, m)
				}
			}
			acc = next
		}
		return acc, nil
	case constraint.Exists:
		ds, err := normalize(g.F)
		if err != nil {
			return nil, err
		}
		for i := range ds {
			for _, v := range g.Vars {
				ds[i].exVars[v] = true
			}
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("%w: node %T after NNF", ErrUnsupported, f)
	}
}

// toPolytope lays the disjunct out over outVars followed by its own
// existential variables (sorted for determinism), dropping existential
// variables that no atom mentions. ok is false for trivially empty
// disjuncts.
func (d disjunct) toPolytope(outVars []string) (PlanDisjunct, bool, error) {
	used := map[string]bool{}
	for _, a := range d.atoms {
		for i, v := range a.Vars {
			if a.Atom.Coef[i] != 0 {
				used[v] = true
			}
		}
	}
	var ex []string
	for v := range d.exVars {
		if used[v] {
			ex = append(ex, v)
		}
	}
	sort.Strings(ex)
	frame := append(append([]string{}, outVars...), ex...)
	index := map[string]int{}
	for i, v := range frame {
		index[v] = i
	}
	var rows []linalg.Vector
	var rhs []float64
	for _, a := range d.atoms {
		coef := make(linalg.Vector, len(frame))
		for i, v := range a.Vars {
			j, ok := index[v]
			if !ok {
				if a.Atom.Coef[i] != 0 {
					return PlanDisjunct{}, false, fmt.Errorf("query: free variable %q not among output variables %v", v, outVars)
				}
				continue
			}
			coef[j] += a.Atom.Coef[i]
		}
		// Constant atoms: trivially true drops, trivially false empties.
		na := constraint.Atom{Coef: coef, B: a.Atom.B, Strict: a.Atom.Strict}
		if trivial, sat := na.IsTrivial(); trivial {
			if !sat {
				return PlanDisjunct{}, false, nil
			}
			continue
		}
		rows = append(rows, coef)
		rhs = append(rhs, a.Atom.B)
	}
	if len(rows) == 0 {
		return PlanDisjunct{}, false, nil
	}
	p := polytope.New(rows, rhs)
	if p.IsEmpty() {
		return PlanDisjunct{}, false, nil
	}
	return PlanDisjunct{Poly: p, ExVars: len(ex)}, true, nil
}
