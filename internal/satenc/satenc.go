// Package satenc implements the paper's geometric SAT encoding
// (Section 4.1.3): with each literal x (resp. ¬x) associate the
// constraint 3/4 < x < 1 (resp. 0 < x < 1/4); a clause is the finite
// union of its literal slabs (observable); a CNF instance is the
// intersection of its clause relations. Relative volume approximation of
// that intersection decides satisfiability, which is why the paper's
// poly-relatedness restriction on intersections is necessary unless
// P = NP. The experiments use this encoding to watch the intersection
// generator abort (experiment E10).
package satenc

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Literal is a 1-based variable index, negative for negated literals
// (the DIMACS convention).
type Literal int

// Clause is a disjunction of literals.
type Clause []Literal

// Instance is a CNF formula.
type Instance struct {
	NumVars int
	Clauses []Clause
}

// LiteralTuple returns the generalized tuple for one literal inside the
// unit cube: the cube constraints keep every tuple well-bounded.
func LiteralTuple(lit Literal, nvars int) constraint.Tuple {
	v := int(lit)
	neg := false
	if v < 0 {
		v, neg = -v, true
	}
	if v < 1 || v > nvars {
		panic(fmt.Sprintf("satenc: literal %d out of range 1..%d", lit, nvars))
	}
	tup := constraint.Cube(nvars, 0, 1)
	coefLo := make(linalg.Vector, nvars)
	coefHi := make(linalg.Vector, nvars)
	coefLo[v-1] = -1
	coefHi[v-1] = 1
	if neg {
		// 0 < x_v < 1/4.
		return tup.With(
			constraint.NewAtom(coefLo, 0, true),    // -x < 0
			constraint.NewAtom(coefHi, 0.25, true), // x < 1/4
		)
	}
	// 3/4 < x_v < 1.
	return tup.With(
		constraint.NewAtom(coefLo, -0.75, true), // -x < -3/4
		constraint.NewAtom(coefHi, 1, true),     // x < 1
	)
}

// ClauseRelation returns the clause as a generalized relation: the union
// of its literal slabs (a finite union of convex sets, hence observable).
func ClauseRelation(c Clause, nvars int) *constraint.Relation {
	vars := make([]string, nvars)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i+1)
	}
	tuples := make([]constraint.Tuple, len(c))
	for i, lit := range c {
		tuples[i] = LiteralTuple(lit, nvars)
	}
	return constraint.MustRelation(fmt.Sprintf("clause%d", len(c)), vars, tuples...)
}

// Observables builds one union observable per clause; their intersection
// (via core.NewIntersection) is the instance's geometric encoding.
func (ins Instance) Observables(r *rng.RNG, opts core.Options) ([]core.Observable, error) {
	out := make([]core.Observable, 0, len(ins.Clauses))
	for i, c := range ins.Clauses {
		rel := ClauseRelation(c, ins.NumVars)
		obs, err := core.NewRelationObservable(rel, core.NewRNGFromSplit(r), opts)
		if err != nil {
			return nil, fmt.Errorf("satenc: clause %d: %w", i, err)
		}
		out = append(out, obs)
	}
	return out, nil
}

// Decode maps a point of the unit cube back to a partial assignment:
// true for x > 3/4, false for x < 1/4, unassigned otherwise.
func Decode(x linalg.Vector) []int {
	out := make([]int, len(x))
	for i, v := range x {
		switch {
		case v > 0.75:
			out[i] = 1
		case v < 0.25:
			out[i] = -1
		}
	}
	return out
}

// SatisfiedByPartial reports whether the partial assignment produced by
// Decode (+1 true, −1 false, 0 unassigned) already satisfies every
// clause — i.e. every completion of it is a witness. Points sampled from
// the clause intersection decode to exactly such partial assignments:
// variables no clause needed may remain in the middle band.
func (ins Instance) SatisfiedByPartial(dec []int) bool {
	for _, c := range ins.Clauses {
		ok := false
		for _, lit := range c {
			v := int(lit)
			if v > 0 && dec[v-1] == 1 || v < 0 && dec[-v-1] == -1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Satisfies reports whether the boolean assignment (true/false per
// variable) satisfies the instance.
func (ins Instance) Satisfies(assign []bool) bool {
	for _, c := range ins.Clauses {
		ok := false
		for _, lit := range c {
			v := int(lit)
			if v > 0 && assign[v-1] || v < 0 && !assign[-v-1] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CountSatisfying brute-forces the number of satisfying assignments
// (ground truth for small instances; the satisfying region of the
// geometric encoding has volume count·(1/4)^n).
func (ins Instance) CountSatisfying() int {
	if ins.NumVars > 24 {
		panic("satenc: brute force limited to 24 variables")
	}
	count := 0
	assign := make([]bool, ins.NumVars)
	for mask := 0; mask < 1<<ins.NumVars; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		if ins.Satisfies(assign) {
			count++
		}
	}
	return count
}

// Satisfiable reports brute-force satisfiability.
func (ins Instance) Satisfiable() bool { return ins.CountSatisfying() > 0 }

// SatisfyingVolume returns the exact volume of the geometric encoding's
// intersection: count · (1/4)^n (each satisfying corner contributes one
// (1/4)-side subcube).
func (ins Instance) SatisfyingVolume() float64 {
	count := ins.CountSatisfying()
	v := float64(count)
	for i := 0; i < ins.NumVars; i++ {
		v *= 0.25
	}
	return v
}

// RandomKSAT draws a uniform k-SAT instance with m clauses over n
// variables (distinct variables within a clause).
func RandomKSAT(r *rng.RNG, n, m, k int) Instance {
	if k > n {
		panic("satenc: clause width exceeds variable count")
	}
	ins := Instance{NumVars: n}
	for c := 0; c < m; c++ {
		perm := r.Perm(n)
		clause := make(Clause, k)
		for i := 0; i < k; i++ {
			v := perm[i] + 1
			if r.Bool() {
				v = -v
			}
			clause[i] = Literal(v)
		}
		ins.Clauses = append(ins.Clauses, clause)
	}
	return ins
}
