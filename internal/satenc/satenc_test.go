package satenc

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
	"repro/internal/walk"
)

func fastOpts() core.Options {
	return core.Options{
		Params: core.Params{Gamma: 0.25, Eps: 0.3, Delta: 0.1},
		Walk:   walk.HitAndRun,
	}
}

func TestLiteralTupleGeometry(t *testing.T) {
	pos := LiteralTuple(1, 2)
	if !pos.Contains(linalg.Vector{0.9, 0.5}) {
		t.Error("x1=0.9 must satisfy literal x1")
	}
	if pos.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("x1=0.5 must not satisfy literal x1")
	}
	neg := LiteralTuple(-1, 2)
	if !neg.Contains(linalg.Vector{0.1, 0.5}) {
		t.Error("x1=0.1 must satisfy literal ¬x1")
	}
	if neg.Contains(linalg.Vector{0.9, 0.5}) {
		t.Error("x1=0.9 must not satisfy literal ¬x1")
	}
	// Bounded by the unit cube.
	if pos.Contains(linalg.Vector{0.9, 1.5}) {
		t.Error("literal tuple must stay inside the unit cube")
	}
}

func TestLiteralTuplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range literal must panic")
		}
	}()
	LiteralTuple(3, 2)
}

func TestClauseRelation(t *testing.T) {
	// Clause (x1 ∨ ¬x2) over 2 variables.
	rel := ClauseRelation(Clause{1, -2}, 2)
	if len(rel.Tuples) != 2 {
		t.Fatalf("clause tuples = %d, want 2", len(rel.Tuples))
	}
	if !rel.Contains(linalg.Vector{0.9, 0.5}) { // x1 true
		t.Error("x1-slab must satisfy the clause")
	}
	if !rel.Contains(linalg.Vector{0.5, 0.1}) { // x2 false
		t.Error("¬x2-slab must satisfy the clause")
	}
	if rel.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("middle of the cube satisfies no literal")
	}
}

func TestSatisfiesAndCount(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): XOR-ish, 2 satisfying assignments.
	ins := Instance{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}
	if got := ins.CountSatisfying(); got != 2 {
		t.Errorf("satisfying count = %d, want 2", got)
	}
	if !ins.Satisfiable() {
		t.Error("instance is satisfiable")
	}
	if !ins.Satisfies([]bool{true, false}) || ins.Satisfies([]bool{true, true}) {
		t.Error("Satisfies wrong")
	}
	// Unsatisfiable: (x1) ∧ (¬x1).
	unsat := Instance{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if unsat.Satisfiable() {
		t.Error("contradiction must be unsatisfiable")
	}
}

func TestSatisfyingVolume(t *testing.T) {
	ins := Instance{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}
	want := 2.0 * 0.25 * 0.25
	if got := ins.SatisfyingVolume(); num.RelErr(got, want) > 1e-12 {
		t.Errorf("satisfying volume = %g, want %g", got, want)
	}
}

func TestDecode(t *testing.T) {
	dec := Decode(linalg.Vector{0.9, 0.1, 0.5})
	if dec[0] != 1 || dec[1] != -1 || dec[2] != 0 {
		t.Errorf("Decode = %v", dec)
	}
}

func TestSatisfiedByPartial(t *testing.T) {
	ins := Instance{NumVars: 3, Clauses: []Clause{{1, 2}, {-3}}}
	// x1 true, x3 false, x2 unassigned: both clauses covered.
	if !ins.SatisfiedByPartial([]int{1, 0, -1}) {
		t.Error("partial witness must satisfy")
	}
	// x2 true covers clause 1, x3 unassigned leaves clause 2 open.
	if ins.SatisfiedByPartial([]int{0, 1, 0}) {
		t.Error("uncovered clause must fail")
	}
	// Wrong polarity.
	if ins.SatisfiedByPartial([]int{-1, -1, -1}) {
		t.Error("clause 1 unsatisfied must fail")
	}
}

func TestGeometricIntersectionFindsWitness(t *testing.T) {
	// A satisfiable instance with many solutions: the intersection
	// generator finds points, and every sample decodes to a satisfying
	// assignment region.
	ins := Instance{NumVars: 2, Clauses: []Clause{{1, 2}}}
	obs, err := ins.Observables(rng.New(1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("observables = %d", len(obs))
	}
	x, err := obs[0].Sample()
	if err != nil {
		t.Fatal(err)
	}
	dec := Decode(x)
	if dec[0] != 1 && dec[1] != 1 {
		t.Errorf("sample %v decodes to %v, which does not satisfy (x1 ∨ x2)", x, dec)
	}
}

func TestGeometricIntersectionTwoClauses(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): satisfiable; intersection sampling must
	// produce points in the satisfying slabs.
	ins := Instance{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}}
	obs, err := ins.Observables(rng.New(2), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.AcceptanceFloor = 1e-3
	inter, err := core.NewIntersection(obs, rng.New(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	x, err := inter.Sample()
	if err != nil {
		t.Fatal(err)
	}
	dec := Decode(x)
	assign := []bool{dec[0] == 1, dec[1] == 1}
	if dec[0] == 0 || dec[1] == 0 || !ins.Satisfies(assign) {
		t.Errorf("intersection sample %v decodes to non-witness %v", x, dec)
	}
	// Volume should approximate 2/16.
	v, err := inter.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, ins.SatisfyingVolume(), 0.6) {
		t.Errorf("intersection volume = %g, want ~%g", v, ins.SatisfyingVolume())
	}
}

func TestGeometricIntersectionUnsat(t *testing.T) {
	// (x1) ∧ (¬x1): empty intersection — the generator must abort, not
	// hang (this is the P=NP boundary the paper points at).
	ins := Instance{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	obs, err := ins.Observables(rng.New(4), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.AcceptanceFloor = 1e-2
	opts.MaxRounds = 2000
	inter, err := core.NewIntersection(obs, rng.New(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inter.Sample()
	if !errors.Is(err, core.ErrNotPolyRelated) && !errors.Is(err, core.ErrGeneratorFailed) {
		t.Errorf("unsat intersection error = %v, want an abort", err)
	}
}

func TestRandomKSATShape(t *testing.T) {
	r := rng.New(6)
	ins := RandomKSAT(r, 10, 42, 3)
	if ins.NumVars != 10 || len(ins.Clauses) != 42 {
		t.Fatalf("instance shape wrong: %d vars, %d clauses", ins.NumVars, len(ins.Clauses))
	}
	for _, c := range ins.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause width %d, want 3", len(c))
		}
		seen := map[int]bool{}
		for _, lit := range c {
			v := int(math.Abs(float64(lit)))
			if v < 1 || v > 10 || seen[v] {
				t.Fatalf("bad clause %v", c)
			}
			seen[v] = true
		}
	}
}

func TestRandomKSATPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > n must panic")
		}
	}()
	RandomKSAT(rng.New(7), 2, 1, 3)
}

func TestBruteForceLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("brute force above 24 vars must panic")
		}
	}()
	Instance{NumVars: 25}.CountSatisfying()
}
