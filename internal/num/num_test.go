package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBallVolumeKnownValues(t *testing.T) {
	cases := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},
		{2, 1, math.Pi},
		{3, 1, 4 * math.Pi / 3},
		{2, 2, 4 * math.Pi},
		{4, 1, math.Pi * math.Pi / 2},
		{0, 5, 1},
	}
	for _, c := range cases {
		got := BallVolume(c.d, c.r)
		if RelErr(got, c.want) > 1e-12 {
			t.Errorf("BallVolume(%d, %g) = %g, want %g", c.d, c.r, got, c.want)
		}
	}
}

func TestSimplexAndCrossPolytopeVolume(t *testing.T) {
	if got, want := SimplexVolume(3, 1), 1.0/6; RelErr(got, want) > 1e-12 {
		t.Errorf("SimplexVolume(3,1) = %g, want %g", got, want)
	}
	if got, want := SimplexVolume(2, 2), 2.0; RelErr(got, want) > 1e-12 {
		t.Errorf("SimplexVolume(2,2) = %g, want %g", got, want)
	}
	if got, want := CrossPolytopeVolume(2, 1), 2.0; RelErr(got, want) > 1e-12 {
		t.Errorf("CrossPolytopeVolume(2,1) = %g, want %g", got, want)
	}
	if got, want := CrossPolytopeVolume(3, 1), 8.0/6; RelErr(got, want) > 1e-12 {
		t.Errorf("CrossPolytopeVolume(3,1) = %g, want %g", got, want)
	}
}

func TestEllipsoidVolume(t *testing.T) {
	got := EllipsoidVolume([]float64{2, 3})
	want := math.Pi * 6
	if RelErr(got, want) > 1e-12 {
		t.Errorf("EllipsoidVolume = %g, want %g", got, want)
	}
}

func TestWithinRatio(t *testing.T) {
	if !WithinRatio(1.05, 1.0, 0.1) {
		t.Error("1.05 should approximate 1.0 with ratio 1.1")
	}
	if WithinRatio(1.2, 1.0, 0.1) {
		t.Error("1.2 should not approximate 1.0 with ratio 1.1")
	}
	if !WithinRatio(1.0/1.09, 1.0, 0.1) {
		t.Error("lower side of the ratio band should pass")
	}
	if WithinRatio(0.8, 1.0, 0.1) {
		t.Error("0.8 should not approximate 1.0 with ratio 1.1")
	}
}

func TestWithinRatioSymmetryProperty(t *testing.T) {
	// Property: WithinRatio(a, b, eps) == WithinRatio(b, a, eps) for
	// positive a, b (the paper's ratio definition is symmetric).
	f := func(a, b float64, e float64) bool {
		a = math.Abs(a) + 0.01
		b = math.Abs(b) + 0.01
		eps := math.Mod(math.Abs(e), 0.9) + 0.01
		return WithinRatio(a, b, eps) == WithinRatio(b, a, eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation in a different order can lose
	// the small terms; Kahan keeps them.
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1e-16)
	}
	got := Sum(xs)
	want := 1 + 1e-12
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("Sum = %.18f, want %.18f", got, want)
	}
}

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !Eq(got, 5) {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := Median(xs); got != 4 {
		t.Errorf("Median = %g, want 4", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice statistics should be zero")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {4, 7, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestComparisonHelpers(t *testing.T) {
	if !Zero(1e-12) || Zero(1e-3) {
		t.Error("Zero tolerance misbehaves")
	}
	if !Eq(1, 1+1e-12) || Eq(1, 1.1) {
		t.Error("Eq tolerance misbehaves")
	}
	if !Leq(1, 1) || !Leq(1, 2) || Leq(2, 1) {
		t.Error("Leq misbehaves")
	}
	if !Geq(2, 1) || Geq(1, 2) {
		t.Error("Geq misbehaves")
	}
	if !Positive(0.1) || Positive(-0.1) || Positive(0) {
		t.Error("Positive misbehaves")
	}
	if !Negative(-0.1) || Negative(0.1) {
		t.Error("Negative misbehaves")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
