// Package num centralises the numerical policy of the repository:
// floating-point tolerances, numerically stable summation, and the
// closed-form volumes used as ground truth by the volume-estimation
// experiments.
//
// Every package that compares floats goes through this package so that the
// tolerance story is consistent. The paper's algorithms are relative-error
// approximation schemes, so float64 with explicit tolerances is a faithful
// substrate (see DESIGN.md §2).
package num

import (
	"math"
	"sort"
)

// Eps is the default absolute tolerance used when comparing coordinates,
// constraint slacks and matrix pivots. It is deliberately much larger than
// machine epsilon: the quantities being compared are results of O(d)
// arithmetic on O(1) inputs.
const Eps = 1e-9

// LooseEps is the tolerance used for quantities that have accumulated
// larger rounding error, such as volumes produced by recursive
// decompositions.
const LooseEps = 1e-6

// Zero reports whether x is zero within Eps.
func Zero(x float64) bool { return math.Abs(x) <= Eps }

// Eq reports whether a and b are equal within Eps.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// Leq reports whether a <= b within Eps.
func Leq(a, b float64) bool { return a <= b+Eps }

// Geq reports whether a >= b within Eps.
func Geq(a, b float64) bool { return a >= b-Eps }

// Positive reports whether x is strictly positive beyond Eps.
func Positive(x float64) bool { return x > Eps }

// Negative reports whether x is strictly negative beyond Eps.
func Negative(x float64) bool { return x < -Eps }

// Clamp returns x clamped into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// WithinRatio reports whether got approximates want with ratio 1+eps in the
// paper's sense (Definition in §2): (1+eps)^-1 * want <= got <= (1+eps) * want.
// Both arguments must be non-negative.
func WithinRatio(got, want, eps float64) bool {
	if want == 0 {
		return got <= eps
	}
	return got >= want/(1+eps) && got <= want*(1+eps)
}

// RelErr returns |got-want| / max(|want|, tiny); it is used for reporting,
// not for pass/fail decisions.
func RelErr(got, want float64) float64 {
	den := math.Abs(want)
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Abs(got-want) / den
}

// Sum returns the Kahan-compensated sum of xs. Volume decompositions add
// many signed terms of similar magnitude, where naive summation loses
// digits.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer
// than two observations are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(n-1)
}

// Median returns the median of xs (the lower median for even lengths),
// or 0 for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	return cp[(n-1)/2]
}

// BallVolume returns the Lebesgue volume of the d-dimensional Euclidean
// ball of radius r: pi^{d/2} r^d / Gamma(d/2 + 1).
func BallVolume(d int, r float64) float64 {
	if d < 0 {
		return 0
	}
	if d == 0 {
		return 1
	}
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	logV := float64(d)/2*math.Log(math.Pi) + float64(d)*math.Log(r) - lg
	return math.Exp(logV)
}

// CubeVolume returns the volume of the d-cube of side s.
func CubeVolume(d int, s float64) float64 { return math.Pow(s, float64(d)) }

// SimplexVolume returns the volume of the standard simplex
// {x : x_i >= 0, sum x_i <= s} in dimension d: s^d / d!.
func SimplexVolume(d int, s float64) float64 {
	lg, _ := math.Lgamma(float64(d) + 1)
	return math.Exp(float64(d)*math.Log(s) - lg)
}

// CrossPolytopeVolume returns the volume of the l1-ball of radius r in
// dimension d: (2r)^d / d!.
func CrossPolytopeVolume(d int, r float64) float64 {
	lg, _ := math.Lgamma(float64(d) + 1)
	return math.Exp(float64(d)*math.Log(2*r) - lg)
}

// EllipsoidVolume returns the volume of the axis-aligned ellipsoid with
// semi-axes axes: BallVolume(d,1) * prod(axes).
func EllipsoidVolume(axes []float64) float64 {
	v := BallVolume(len(axes), 1)
	for _, a := range axes {
		v *= a
	}
	return v
}

// Binomial returns C(n, k) as a float64 (exact for the small arguments
// used by the inclusion-exclusion volume code).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}
