package viz

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
)

func TestCanvasProducesValidSVGSkeleton(t *testing.T) {
	c := NewCanvas(200, 100, linalg.Vector{0, 0}, linalg.Vector{10, 5})
	c.Point(linalg.Vector{5, 2.5}, 2, "#ff0000")
	c.Line(linalg.Vector{0, 0}, linalg.Vector{10, 5}, "#000000", 1)
	c.Text(linalg.Vector{1, 1}, "label <&>")
	s := c.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<line", "<text", "&lt;&amp;&gt;"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestCoordinateTransformFlipsY(t *testing.T) {
	c := NewCanvas(100, 100, linalg.Vector{0, 0}, linalg.Vector{1, 1})
	// World (0,0) is bottom-left: pixel y = 100.
	x, y := c.tx(linalg.Vector{0, 0})
	if x != 0 || y != 100 {
		t.Errorf("tx(0,0) = (%g, %g), want (0, 100)", x, y)
	}
	x, y = c.tx(linalg.Vector{1, 1})
	if x != 100 || y != 0 {
		t.Errorf("tx(1,1) = (%g, %g), want (100, 0)", x, y)
	}
}

func TestTuplePolygonSquare(t *testing.T) {
	vs, err := TuplePolygon(constraint.Cube(2, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("square polygon has %d vertices", len(vs))
	}
	// Counter-clockwise ordering: the signed area is positive.
	var area float64
	for i := range vs {
		j := (i + 1) % len(vs)
		area += vs[i][0]*vs[j][1] - vs[j][0]*vs[i][1]
	}
	if area <= 0 {
		t.Errorf("polygon not CCW: signed area %g", area)
	}
}

func TestTuplePolygonRejectsWrongDimension(t *testing.T) {
	if _, err := TuplePolygon(constraint.Cube(3, 0, 1)); err == nil {
		t.Error("3-D tuple must be rejected")
	}
}

func TestDrawRelation(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x", "y"},
		constraint.Cube(2, 0, 1),
		constraint.Box(linalg.Vector{2, 0}, linalg.Vector{3, 1}),
	)
	c := NewCanvas(300, 100, linalg.Vector{-0.5, -0.5}, linalg.Vector{3.5, 1.5})
	if err := DrawRelation(c, rel, Palette[0], "#000", 0.5); err != nil {
		t.Fatal(err)
	}
	s := c.String()
	if strings.Count(s, "<polygon") != 2 {
		t.Errorf("expected 2 polygons, got %d", strings.Count(s, "<polygon"))
	}
}

func TestPolygonSkipsDegenerate(t *testing.T) {
	c := NewCanvas(100, 100, linalg.Vector{0, 0}, linalg.Vector{1, 1})
	c.Polygon([]linalg.Vector{{0, 0}, {1, 1}}, "#fff", "#000", 1)
	if strings.Contains(c.String(), "<polygon") {
		t.Error("two-point polygon must be skipped")
	}
}
