// Package viz renders 2-D constraint-database scenes — relations,
// sample clouds, reconstruction hulls — as standalone SVG documents,
// using only the standard library. It exists for the GIS-flavoured
// tooling (cmd/cdbplot): the paper's motivating applications are spatial,
// and pictures of sampled regions make the generators inspectable.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
)

// Canvas accumulates SVG elements over a world-coordinate viewport.
type Canvas struct {
	pxW, pxH   float64
	lo, hi     linalg.Vector
	elements   []string
	background string
}

// NewCanvas creates a canvas of pixel size w x h showing the world
// rectangle [lo, hi]. Y grows upward in world coordinates (SVG's flip is
// handled internally).
func NewCanvas(w, h int, lo, hi linalg.Vector) *Canvas {
	return &Canvas{
		pxW: float64(w), pxH: float64(h),
		lo: lo.Clone(), hi: hi.Clone(),
		background: "#ffffff",
	}
}

// SetBackground sets the background fill.
func (c *Canvas) SetBackground(color string) { c.background = color }

func (c *Canvas) tx(p linalg.Vector) (float64, float64) {
	x := (p[0] - c.lo[0]) / (c.hi[0] - c.lo[0]) * c.pxW
	y := c.pxH - (p[1]-c.lo[1])/(c.hi[1]-c.lo[1])*c.pxH
	return x, y
}

// Polygon draws a filled polygon from world-coordinate vertices in order.
func (c *Canvas) Polygon(vs []linalg.Vector, fill, stroke string, opacity float64) {
	if len(vs) < 3 {
		return
	}
	pts := make([]string, len(vs))
	for i, v := range vs {
		x, y := c.tx(v)
		pts[i] = fmt.Sprintf("%.2f,%.2f", x, y)
	}
	c.elements = append(c.elements, fmt.Sprintf(
		`<polygon points="%s" fill="%s" stroke="%s" fill-opacity="%.2f" stroke-width="1"/>`,
		strings.Join(pts, " "), fill, stroke, opacity))
}

// Point draws a dot at a world coordinate.
func (c *Canvas) Point(p linalg.Vector, radius float64, color string) {
	x, y := c.tx(p)
	c.elements = append(c.elements, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`, x, y, radius, color))
}

// Line draws a segment between world coordinates.
func (c *Canvas) Line(a, b linalg.Vector, color string, width float64) {
	x1, y1 := c.tx(a)
	x2, y2 := c.tx(b)
	c.elements = append(c.elements, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, color, width))
}

// Text places a label at a world coordinate.
func (c *Canvas) Text(p linalg.Vector, s string) {
	x, y := c.tx(p)
	c.elements = append(c.elements, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-family="monospace" font-size="12">%s</text>`,
		x, y, escape(s)))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// WriteTo emits the SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		c.pxW, c.pxH, c.pxW, c.pxH)
	fmt.Fprintf(&sb, `<rect width="%.0f" height="%.0f" fill="%s"/>`, c.pxW, c.pxH, c.background)
	for _, e := range c.elements {
		sb.WriteString(e)
	}
	sb.WriteString(`</svg>`)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the document to a string.
func (c *Canvas) String() string {
	var sb strings.Builder
	c.WriteTo(&sb)
	return sb.String()
}

// TuplePolygon converts a bounded 2-D generalized tuple into its vertex
// polygon, ordered counter-clockwise around the centroid.
func TuplePolygon(t constraint.Tuple) ([]linalg.Vector, error) {
	if t.Dim() != 2 {
		return nil, fmt.Errorf("viz: TuplePolygon requires dimension 2, got %d", t.Dim())
	}
	p := polytope.FromTuple(t)
	vs, err := p.Vertices()
	if err != nil {
		return nil, err
	}
	if len(vs) < 3 {
		return nil, nil
	}
	var cx, cy float64
	for _, v := range vs {
		cx += v[0]
		cy += v[1]
	}
	cx /= float64(len(vs))
	cy /= float64(len(vs))
	sort.Slice(vs, func(i, j int) bool {
		ai := math.Atan2(vs[i][1]-cy, vs[i][0]-cx)
		aj := math.Atan2(vs[j][1]-cy, vs[j][0]-cx)
		return ai < aj
	})
	return vs, nil
}

// DrawRelation draws every non-empty tuple of a 2-D relation.
func DrawRelation(c *Canvas, rel *constraint.Relation, fill, stroke string, opacity float64) error {
	for _, t := range rel.Tuples {
		poly, err := TuplePolygon(t)
		if err != nil {
			return err
		}
		if poly != nil {
			c.Polygon(poly, fill, stroke, opacity)
		}
	}
	return nil
}

// Palette is a small color palette for multi-class scenes.
var Palette = []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2"}
