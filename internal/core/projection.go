package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// Projection is the paper's projection generator (Theorem 4.3,
// Algorithm 2) for a convex relation S ⊆ R^d projected onto the
// coordinates in Keep. A uniform sample of S projects to a *non-uniform*
// point of T = π_I(S) — the paper's Figure 1 — because fat cylinders
// attract more mass; Algorithm 2 compensates by accepting a projected
// point y with probability inversely proportional to the (estimated)
// volume ĥ(y) of the cylinder H_S(y) above it.
type Projection struct {
	poly  *polytope.Polytope
	keep  []int // coordinates of T (the set I)
	drop  []int // complementary coordinates
	src   *Convex
	grid  geom.Grid // γ-grid on the projected space
	opts  Options
	r     *rng.RNG
	inner float64 // inner radius witness of T (projection of S's inner ball)

	// hCache memoizes cylinder sizes per grid cell: the walk revisits
	// cells constantly and exact slice volumes are not free.
	hCache map[string]float64
	// cRef is the acceptance normalisation: accept with probability
	// min(1, cRef/ĥ). The paper's Algorithm 2 uses cRef = 1 (one grid
	// cell), which is exactly right when a single coordinate is
	// eliminated (the cylinder is one grid column, the case its
	// acceptance analysis covers). When k ≥ 2 coordinates are
	// eliminated, cylinder sizes scale like p^{-k} and the constant-1
	// normalisation makes acceptance exponentially small in k; a pilot
	// phase then sets cRef to half the smallest observed cylinder —
	// uniformity is exact on every cell with ĥ ≥ cRef and only cells
	// thinner than half the observed minimum are (slightly) under-
	// weighted. See DESIGN.md on this engineering deviation.
	cRef float64

	rounds, accepts int

	vol      float64
	volKnown bool
}

var _ Observable = (*Projection)(nil)

// NewProjection builds the generator for π_keep(S), S given as an
// H-polytope. keep must be a strict, non-empty subset of coordinates.
func NewProjection(poly *polytope.Polytope, keep []int, r *rng.RNG, opts Options) (*Projection, error) {
	d := poly.Dim()
	if len(keep) == 0 || len(keep) >= d {
		return nil, fmt.Errorf("core: projection must keep a strict non-empty coordinate subset (keep %d of %d)", len(keep), d)
	}
	seen := make(map[int]bool)
	for _, j := range keep {
		if j < 0 || j >= d || seen[j] {
			return nil, fmt.Errorf("core: invalid projection coordinate %d", j)
		}
		seen[j] = true
	}
	var drop []int
	for j := 0; j < d; j++ {
		if !seen[j] {
			drop = append(drop, j)
		}
	}
	src, err := NewConvexPolytope(poly, r.Split(), opts)
	if err != nil {
		return nil, err
	}
	// The projection of S's inner ball is an inner ball of T with the
	// same radius (the paper's witness argument in Theorem 4.3's proof).
	_, innerR, err := poly.Chebyshev()
	if err != nil {
		return nil, err
	}
	p := opts.params()
	grid := geom.NewGrid(len(keep), geom.StepForGamma(p.Gamma, len(keep), innerR))
	return &Projection{
		poly: poly, keep: keep, drop: drop, src: src,
		grid: grid, opts: opts, r: r, inner: innerR,
		hCache: make(map[string]float64),
	}, nil
}

// calibrate sets the acceptance normalisation cRef. For single-
// coordinate elimination it is the paper's constant 1; otherwise a
// pilot of naive projections estimates the smallest occupied cylinder.
func (pr *Projection) calibrate() error {
	if pr.cRef > 0 {
		return nil
	}
	if len(pr.drop) == 1 {
		pr.cRef = 1
		return nil
	}
	const pilot = 48
	minH := math.Inf(1)
	for i := 0; i < pilot; i++ {
		if err := pr.opts.interrupted(); err != nil {
			return err
		}
		x, err := pr.src.Sample()
		if err != nil {
			continue
		}
		h, err := pr.cylinderCells(pr.grid.Snap(pr.project(x)))
		if err != nil {
			return err
		}
		if h > 0 && h < minH {
			minH = h
		}
	}
	if math.IsInf(minH, 1) {
		return fmt.Errorf("%w: projection pilot saw no occupied cylinders", ErrGeneratorFailed)
	}
	pr.cRef = minH / 2
	if pr.cRef < 1 {
		pr.cRef = 1
	}
	return nil
}

// Dim returns the dimension of the projected space.
func (pr *Projection) Dim() int { return len(pr.keep) }

// Grid returns the γ-grid of the projected space.
func (pr *Projection) Grid() geom.Grid { return pr.grid }

// Contains decides y ∈ T by LP feasibility of the cylinder H_S(y) — the
// membership oracle for a projection that symbolic evaluation would need
// Fourier–Motzkin to produce.
func (pr *Projection) Contains(y linalg.Vector) bool {
	slice := pr.poly.Slice(pr.keep, y)
	return !slice.IsEmpty()
}

// project extracts the kept coordinates of x.
func (pr *Projection) project(x linalg.Vector) linalg.Vector {
	y := make(linalg.Vector, len(pr.keep))
	for i, j := range pr.keep {
		y[i] = x[j]
	}
	return y
}

// cylinderCells estimates ĥ(y): the number of grid cells in the cylinder
// H_S(y), i.e. vol(S ∩ {x_I = y}) / p^{d-e}. Slices of dimension at most
// polytope.MaxExactDim are measured exactly (Lasserre); higher ones fall
// back to a nested DFK estimate, exactly as the paper composes its
// estimators.
func (pr *Projection) cylinderCells(y linalg.Vector) (float64, error) {
	key := pr.grid.Key(y)
	if h, ok := pr.hCache[key]; ok {
		return h, nil
	}
	h, err := pr.cylinderCellsUncached(y)
	if err != nil {
		return 0, err
	}
	pr.hCache[key] = h
	return h, nil
}

func (pr *Projection) cylinderCellsUncached(y linalg.Vector) (float64, error) {
	slice := pr.poly.Slice(pr.keep, y)
	if slice.IsEmpty() {
		return 0, nil
	}
	k := len(pr.drop)
	var h float64
	if k <= polytope.MaxExactDim {
		v, err := slice.Volume()
		if err != nil {
			return 0, err
		}
		h = v
	} else {
		nested, err := NewConvexPolytope(slice, pr.r.Split(), pr.opts)
		if err != nil {
			// A flat slice has zero k-volume.
			return 0, nil
		}
		v, err := nested.Volume()
		if err != nil {
			return 0, err
		}
		h = v
	}
	return h / math.Pow(pr.grid.Step, float64(k)), nil
}

// Sample implements Algorithm 2: draw x from S, project and snap y to
// the γ-grid of T, estimate the cylinder size ĥ(y), and accept with
// probability min(1, 1/ĥ(y)). The resulting density over grid cells is
// constant (each cell's mass h(y)·p^e/μ(S) is multiplied by p^{d-e}/h(y)),
// which is the theorem's uniformity argument.
func (pr *Projection) Sample() (linalg.Vector, error) {
	if err := pr.calibrate(); err != nil {
		return nil, err
	}
	// Per-round acceptance is at least ε/d³ after rounding (the paper's
	// bound for single-coordinate cylinders); the budget uses the
	// measured-scale equivalent.
	d := pr.poly.Dim()
	perRound := pr.opts.params().Eps / math.Pow(float64(d), 3)
	if perRound < 1e-4 {
		perRound = 1e-4
	}
	rounds := pr.opts.maxRounds(perRound)
	for k := 0; k < rounds; k++ {
		if err := pr.opts.interrupted(); err != nil {
			return nil, err
		}
		pr.rounds++
		x, err := pr.src.Sample()
		if err != nil {
			continue
		}
		y := pr.grid.Snap(pr.project(x))
		hCells, err := pr.cylinderCells(y)
		if err != nil {
			return nil, err
		}
		if hCells <= 0 {
			continue // snapped out of the body
		}
		p := 1.0
		if hCells > pr.cRef {
			p = pr.cRef / hCells
		}
		if pr.r.Float64() < p {
			pr.accepts++
			return y, nil
		}
	}
	return nil, fmt.Errorf("%w: projection after %d rounds", ErrGeneratorFailed, rounds)
}

// SampleNaive projects a uniform sample of S without the Algorithm 2
// compensation — the distribution of Figure 1, provided for the E7
// experiment that quantifies how non-uniform it is.
func (pr *Projection) SampleNaive() (linalg.Vector, error) {
	x, err := pr.src.Sample()
	if err != nil {
		return nil, err
	}
	return pr.grid.Snap(pr.project(x)), nil
}

// AcceptanceRate reports accepted rounds / rounds.
func (pr *Projection) AcceptanceRate() float64 {
	if pr.rounds == 0 {
		return 0
	}
	return float64(pr.accepts) / float64(pr.rounds)
}

// Volume estimates μ(T) through the importance identity behind
// Algorithm 2: a naive projection lands in cell y with probability
// h(y)·p^e/μ(S), so the weight w(y) = 1/ĥ_cells(y) has expectation
// N_T·p^d/μ(S) and
//
//	μ(T) = N_T · p^e = E[w] · μ̂(S) / p^{d-e}.
//
// Cells thinner than one grid layer are clamped to ĥ = 1 (the paper's
// grid counts are integers ≥ 1), which bounds the weights and costs only
// an O(γ) boundary band. Unlike the rejection path, this estimator needs
// no acceptance normalisation, so it is unbiased for any number of
// eliminated coordinates.
func (pr *Projection) Volume() (float64, error) {
	if pr.volKnown {
		return pr.vol, nil
	}
	volS, err := pr.src.Volume()
	if err != nil {
		return 0, err
	}
	p := pr.opts.params()
	n := geom.ChernoffSampleCount(p.Eps/4, p.Delta)
	if cap := pr.opts.maxPhaseSamples(); n > cap {
		n = cap
	}
	var sumW float64
	got := 0
	for i := 0; i < n; i++ {
		if err := pr.opts.interrupted(); err != nil {
			return 0, err
		}
		x, err := pr.src.Sample()
		if err != nil {
			continue
		}
		y := pr.grid.Snap(pr.project(x))
		hCells, err := pr.cylinderCells(y)
		if err != nil {
			return 0, err
		}
		got++
		if hCells <= 0 {
			continue // snapped off the body: weight 0
		}
		if hCells < 1 {
			hCells = 1
		}
		sumW += 1 / hCells
	}
	if got == 0 || sumW == 0 {
		return 0, fmt.Errorf("%w: projection volume saw no mass", ErrGeneratorFailed)
	}
	k := len(pr.drop)
	pr.vol = (sumW / float64(got)) * volS / math.Pow(pr.grid.Step, float64(k))
	pr.volKnown = true
	return pr.vol, nil
}

// ProjectionBody adapts a projection to a walk.Body via its LP
// membership oracle, so that reconstruction (and even a direct DFK pass)
// can run on T without symbolic elimination.
type ProjectionBody struct{ Pr *Projection }

// Dim returns the projected dimension.
func (pb ProjectionBody) Dim() int { return pb.Pr.Dim() }

// Contains defers to the slice-feasibility oracle.
func (pb ProjectionBody) Contains(y linalg.Vector) bool { return pb.Pr.Contains(y) }

// InnerBall returns a witness ball of T: the projection of S's
// Chebyshev ball.
func (pb ProjectionBody) InnerBall() (linalg.Vector, float64, error) {
	c, r, err := pb.Pr.poly.Chebyshev()
	if err != nil {
		return nil, 0, err
	}
	return pb.Pr.project(c), r, nil
}

// OuterRadius bounds T: the projection of S's bounding box.
func (pb ProjectionBody) OuterRadius() (float64, error) {
	lo, hi, ok := lp.BoundingBox(pb.Pr.poly.A, pb.Pr.poly.B)
	if !ok {
		return 0, ErrNotWellBounded
	}
	var r2 float64
	for _, j := range pb.Pr.keep {
		half := (hi[j] - lo[j]) / 2
		r2 += half * half
	}
	return math.Sqrt(r2) * 2, nil
}

// NewRNGFromSplit derives a child RNG (re-export for packages layered on
// core that should not import internal/rng directly).
func NewRNGFromSplit(r *rng.RNG) *rng.RNG { return r.Split() }
