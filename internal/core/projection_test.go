package core

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// fig1Triangle is the right triangle {x >= 0, y >= 0, x + y <= 1}: its
// projection onto y is [0, 1], but cylinder widths shrink linearly with
// y — exactly the Figure 1 configuration of the paper.
func fig1Triangle() *polytope.Polytope {
	return polytope.New(
		[]linalg.Vector{{-1, 0}, {0, -1}, {1, 1}},
		[]float64{0, 0, 1},
	)
}

func TestProjectionSamplesInsideT(t *testing.T) {
	pr, err := NewProjection(fig1Triangle(), []int{1}, rng.New(1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		y, err := pr.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != 1 || y[0] < -0.05 || y[0] > 1.05 {
			t.Fatalf("projection sample %v outside [0,1]", y)
		}
	}
}

func TestProjectionFixesFigure1(t *testing.T) {
	// The paper's Figure 1 phenomenon: naive projection of the triangle
	// onto y is linearly biased toward 0; Algorithm 2 flattens it.
	// Compare the mean: naive E[y] = 1/3, uniform E[y] = 1/2.
	pr, err := NewProjection(fig1Triangle(), []int{1}, rng.New(2), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	var naiveMean, algoMean float64
	for i := 0; i < n; i++ {
		ny, err := pr.SampleNaive()
		if err != nil {
			t.Fatal(err)
		}
		naiveMean += ny[0] / n
	}
	for i := 0; i < n; i++ {
		y, err := pr.Sample()
		if err != nil {
			t.Fatal(err)
		}
		algoMean += y[0] / n
	}
	if math.Abs(naiveMean-1.0/3) > 0.05 {
		t.Errorf("naive projection mean = %g, want ~1/3 (the Figure 1 bias)", naiveMean)
	}
	if math.Abs(algoMean-0.5) > 0.05 {
		t.Errorf("Algorithm 2 mean = %g, want ~1/2 (uniform)", algoMean)
	}
}

func TestProjectionUniformityTV(t *testing.T) {
	// Histogram over the γ-grid of T: Algorithm 2's TV distance to
	// uniform must be clearly below the naive projection's.
	pr, err := NewProjection(fig1Triangle(), []int{1}, rng.New(3), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g := pr.Grid()
	bins := func(sample func() (linalg.Vector, error), n int) []int {
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			y, err := sample()
			if err != nil {
				t.Fatal(err)
			}
			// Clamp to the interior so boundary half-cells do not distort
			// the histogram.
			yy := y[0]
			if yy < 0.05 || yy > 0.95 {
				continue
			}
			counts[g.Key(linalg.Vector{yy})]++
		}
		flat := make([]int, 0, len(counts))
		for _, c := range counts {
			flat = append(flat, c)
		}
		return flat
	}
	const n = 2500
	naiveTV := geom.TVDistanceUniform(bins(pr.SampleNaive, n))
	algoTV := geom.TVDistanceUniform(bins(pr.Sample, n))
	if algoTV >= naiveTV {
		t.Errorf("Algorithm 2 TV (%g) must beat naive TV (%g)", algoTV, naiveTV)
	}
	if naiveTV < 0.1 {
		t.Errorf("naive TV = %g: the Figure 1 bias should be pronounced", naiveTV)
	}
	if algoTV > 0.15 {
		t.Errorf("Algorithm 2 TV = %g: should be near uniform", algoTV)
	}
}

func TestProjectionVolume(t *testing.T) {
	// Projection of the triangle onto y is [0, 1]: length 1.
	pr, err := NewProjection(fig1Triangle(), []int{1}, rng.New(4), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := pr.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 1, 0.45) {
		t.Errorf("projection volume = %g, want ~1", v)
	}
}

func TestProjection3DTo2D(t *testing.T) {
	// Simplex in R^3 projected to (x, y): T is the triangle
	// {x, y >= 0, x + y <= 1}, area 1/2.
	p := polytope.FromTuple(constraint.Simplex(3, 1))
	pr, err := NewProjection(p, []int{0, 1}, rng.New(5), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tri := polytope.FromTuple(constraint.Simplex(2, 1))
	for i := 0; i < 150; i++ {
		y, err := pr.Sample()
		if err != nil {
			t.Fatal(err)
		}
		// Allow half-cell slack at the boundary from snapping.
		grown := tri.Clone()
		for k := range grown.B {
			grown.B[k] += pr.Grid().Step
		}
		if !grown.Contains(y) {
			t.Fatalf("projected sample %v outside the triangle", y)
		}
	}
	v, err := pr.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 0.5, 0.5) {
		t.Errorf("projected area = %g, want ~0.5", v)
	}
}

func TestProjectionMembershipOracle(t *testing.T) {
	pr, err := NewProjection(fig1Triangle(), []int{0}, rng.New(6), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Contains(linalg.Vector{0.5}) || pr.Contains(linalg.Vector{1.5}) {
		t.Error("projection LP membership wrong")
	}
	pb := ProjectionBody{Pr: pr}
	if pb.Dim() != 1 || !pb.Contains(linalg.Vector{0.25}) {
		t.Error("ProjectionBody adapter wrong")
	}
	c, r, err := pb.InnerBall()
	if err != nil || r <= 0 || len(c) != 1 {
		t.Errorf("inner ball witness = %v, %g, %v", c, r, err)
	}
	R, err := pb.OuterRadius()
	if err != nil || R <= 0 {
		t.Errorf("outer radius witness = %g, %v", R, err)
	}
}

func TestProjectionRejectsBadCoordinates(t *testing.T) {
	p := fig1Triangle()
	cases := [][]int{{}, {0, 1}, {-1}, {5}, {0, 0}}
	for _, keep := range cases {
		if _, err := NewProjection(p, keep, rng.New(7), fastOpts()); err == nil {
			t.Errorf("keep=%v must be rejected", keep)
		}
	}
}

func TestProjectionAcceptanceReported(t *testing.T) {
	pr, err := NewProjection(fig1Triangle(), []int{1}, rng.New(8), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := pr.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if r := pr.AcceptanceRate(); r <= 0 || r > 1 {
		t.Errorf("acceptance rate = %g", r)
	}
}
