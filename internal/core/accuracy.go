package core

import "math"

// VolumeAccuracy is the (ε, δ) budget record of one volume estimation:
// what the caller requested (Params.Eps / Params.Delta) versus what the
// Chernoff sample counts actually delivered after the practicality caps
// (Options.MaxPhaseSamples). When a per-phase sample count is capped,
// the confidence δ is held fixed and the achieved half-width widens —
// AchievedEps is the honest ε the estimate satisfies at the requested
// δ. This is the silent accuracy loss the observability ledger exists
// to surface: the theoretical schedule is O(d¹⁹) and nobody runs it,
// so the gap between requested and achieved is a property of every
// real deployment, not an edge case.
type VolumeAccuracy struct {
	RequestedEps   float64
	RequestedDelta float64
	AchievedEps    float64
	AchievedDelta  float64
	// Capped reports that at least one sampling pass hit its cap, so
	// AchievedEps > RequestedEps.
	Capped bool
	// Probes is the total number of sampling probes spent.
	Probes int64
}

// merge folds another stage's accuracy into v: ε degradations compose
// approximately additively ((1+ε₁)(1+ε₂) ≈ 1+ε₁+ε₂ for small ε), caps
// and probes accumulate.
func (v *VolumeAccuracy) merge(o VolumeAccuracy) {
	v.AchievedEps += o.AchievedEps
	v.Capped = v.Capped || o.Capped
	v.Probes += o.Probes
}

// achievedHalfWidth inverts the Chernoff/Hoeffding sample-count bound
// n = ln(2/δ)/(2a²) for the additive half-width a that n samples
// actually deliver at confidence 1−δ.
func achievedHalfWidth(n int, delta float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// VolumeAccuracyReporter is implemented by estimators that track their
// (ε, δ) ledger. Callers type-assert (mirrors EffortReporter).
type VolumeAccuracyReporter interface {
	// VolumeAccuracy returns the ledger of the last Volume computation;
	// ok is false when no volume pass has run yet.
	VolumeAccuracy() (VolumeAccuracy, bool)
}

// VolumeAccuracyOf returns o's volume-accuracy ledger when it reports
// one.
func VolumeAccuracyOf(o any) (VolumeAccuracy, bool) {
	if vr, ok := o.(VolumeAccuracyReporter); ok {
		return vr.VolumeAccuracy()
	}
	return VolumeAccuracy{}, false
}

// VolumeAccuracy reports the ledger of the prepared volume pass.
func (c *Convex) VolumeAccuracy() (VolumeAccuracy, bool) {
	return c.volAcc, c.volKnown
}

// VolumeAccuracy reports the ledger of the preparation-time volume
// pass.
func (p *PreparedConvex) VolumeAccuracy() (VolumeAccuracy, bool) {
	return p.volAcc, p.volKnown
}

// VolumeAccuracy reports the union estimator's ledger: the union
// acceptance pass folded with the worst member pass.
func (u *Union) VolumeAccuracy() (VolumeAccuracy, bool) {
	return u.volAcc, u.volKnown
}
