package core

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

// fastOpts keeps unit tests quick; accuracy-critical checks use their
// own parameters.
func fastOpts() Options {
	return Options{
		Params: Params{Gamma: 0.25, Eps: 0.3, Delta: 0.1},
		Walk:   walk.HitAndRun,
	}
}

func TestConvexSampleStaysInBody(t *testing.T) {
	p := polytope.FromTuple(constraint.Cube(3, -1, 1))
	c, err := NewConvexPolytope(p, rng.New(1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x, err := c.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !p.Contains(x) {
			t.Fatalf("sample %v left the cube", x)
		}
	}
}

func TestConvexSampleMeanCenters(t *testing.T) {
	p := polytope.FromTuple(constraint.Box(linalg.Vector{2, -3}, linalg.Vector{4, 5}))
	c, err := NewConvexPolytope(p, rng.New(2), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	mean := make(linalg.Vector, 2)
	const n = 4000
	for i := 0; i < n; i++ {
		x, err := c.Sample()
		if err != nil {
			t.Fatal(err)
		}
		mean.AddScaled(1.0/n, x)
	}
	if math.Abs(mean[0]-3) > 0.1 || math.Abs(mean[1]-1) > 0.25 {
		t.Errorf("sample mean = %v, want ~(3, 1)", mean)
	}
}

func TestConvexGridWalkSamplesOnGrid(t *testing.T) {
	// The faithful DFK configuration: grid walk, samples are grid points
	// in rounded space.
	opts := fastOpts()
	opts.Walk = walk.GridWalk
	opts.WalkSteps = 4000
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	c, err := NewConvexPolytope(p, rng.New(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Grid()
	for i := 0; i < 50; i++ {
		y, err := c.SampleRounded()
		if err != nil {
			t.Fatal(err)
		}
		snapped := g.Snap(y)
		if !snapped.Equal(y, 1e-9) {
			t.Fatalf("rounded sample %v not on the γ-grid", y)
		}
	}
}

func TestConvexGridWalkUniformity(t *testing.T) {
	// Definition 2.2(1) empirically: cell frequencies on the square stay
	// within a reasonable TV distance of uniform.
	opts := Options{Params: Params{Gamma: 0.45, Eps: 0.3, Delta: 0.1}, Walk: walk.GridWalk, WalkSteps: 600}
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	c, err := NewConvexPolytope(p, rng.New(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Grid()
	counts := map[string]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		y, err := c.SampleRounded()
		if err != nil {
			t.Fatal(err)
		}
		counts[g.Key(y)]++
	}
	flat := make([]int, 0, len(counts))
	for _, v := range counts {
		flat = append(flat, v)
	}
	if tv := geom.TVDistanceUniform(flat); tv > 0.25 {
		t.Errorf("grid-walk TV distance = %g over %d cells", tv, len(flat))
	}
}

func TestConvexVolumeCube(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		p := polytope.FromTuple(constraint.Cube(d, -1, 1))
		c, err := NewConvexPolytope(p, rng.New(uint64(10+d)), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Volume()
		if err != nil {
			t.Fatal(err)
		}
		want := num.CubeVolume(d, 2)
		if !num.WithinRatio(v, want, 0.35) {
			t.Errorf("d=%d: estimated cube volume %g vs exact %g", d, v, want)
		}
	}
}

func TestConvexVolumeSimplex(t *testing.T) {
	for _, d := range []int{2, 3} {
		p := polytope.FromTuple(constraint.Simplex(d, 1))
		c, err := NewConvexPolytope(p, rng.New(uint64(20+d)), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		v, err := c.Volume()
		if err != nil {
			t.Fatal(err)
		}
		want := num.SimplexVolume(d, 1)
		if !num.WithinRatio(v, want, 0.4) {
			t.Errorf("d=%d: estimated simplex volume %g vs exact %g", d, v, want)
		}
	}
}

func TestConvexVolumeCached(t *testing.T) {
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	c, err := NewConvexPolytope(p, rng.New(5), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.Volume()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("Volume must be cached per generator instance")
	}
}

func TestConvexElongatedBodyVolume(t *testing.T) {
	// A 1x50 box stresses rounding: without it the walk would barely
	// explore the long axis.
	p := polytope.FromTuple(constraint.Box(linalg.Vector{0, 0}, linalg.Vector{50, 1}))
	c, err := NewConvexPolytope(p, rng.New(6), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 50, 0.4) {
		t.Errorf("elongated box volume = %g, want ~50", v)
	}
}

func TestConvexMembershipOracleBody(t *testing.T) {
	// §5: only a membership oracle is needed — sample a ball given as an
	// oracle, estimate its volume.
	ball := walk.BallBody{Center: linalg.Vector{1, 2, 3}, Radius: 1.5}
	c, err := NewConvex(oracleOnly{ball}, ball.Center, ball.Radius, ball.Radius, rng.New(7), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x, err := c.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x.Dist(ball.Center) > ball.Radius+1e-9 {
			t.Fatalf("oracle sample %v left the ball", x)
		}
	}
	v, err := c.Volume()
	if err != nil {
		t.Fatal(err)
	}
	want := num.BallVolume(3, 1.5)
	if !num.WithinRatio(v, want, 0.45) {
		t.Errorf("oracle ball volume = %g, want %g", v, want)
	}
}

type oracleOnly struct{ b walk.Body }

func (o oracleOnly) Dim() int                      { return o.b.Dim() }
func (o oracleOnly) Contains(x linalg.Vector) bool { return o.b.Contains(x) }

func TestConvexRejectsFlatPolytope(t *testing.T) {
	flat := polytope.New([]linalg.Vector{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}, []float64{0, 0, 1, 1})
	if _, err := NewConvexPolytope(flat, rng.New(8), fastOpts()); err == nil {
		t.Error("flat polytope must be rejected as not well-bounded")
	}
}

func TestConvexRejectsUnbounded(t *testing.T) {
	unb := polytope.New([]linalg.Vector{{-1, 0}, {0, -1}}, []float64{0, 0})
	if _, err := NewConvexPolytope(unb, rng.New(9), fastOpts()); err == nil {
		t.Error("unbounded polytope must be rejected")
	}
}

func TestConvexRejectsEmpty(t *testing.T) {
	empty := polytope.New([]linalg.Vector{{1}, {-1}}, []float64{0, -1})
	if _, err := NewConvexPolytope(empty, rng.New(10), fastOpts()); err == nil {
		t.Error("empty polytope must be rejected")
	}
}

func TestConvexBadParams(t *testing.T) {
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	bad := Options{Params: Params{Gamma: 2, Eps: 0.3, Delta: 0.1}}
	if _, err := NewConvexPolytope(p, rng.New(11), bad); err == nil {
		t.Error("gamma >= 1 must be rejected")
	}
}

func TestConvexDeterministicWithSeed(t *testing.T) {
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	a, err := NewConvexPolytope(p, rng.New(42), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConvexPolytope(p, rng.New(42), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		xa, _ := a.Sample()
		xb, _ := b.Sample()
		if !xa.Equal(xb, 0) {
			t.Fatal("same seed must give identical sample streams")
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	var o Options
	if o.params() != p {
		t.Error("zero Options must select DefaultParams")
	}
}
