// Package core implements the paper's primary contribution: almost
// uniform generators and relative volume estimators ((γ, ε, δ)-generators
// and (ε, δ)-volume estimators, Definition 2.2) for generalized relations,
// closed under the logical operators.
//
// The base generator is the Dyer–Frieze–Kannan random walk for
// well-bounded convex bodies given by membership oracles (Convex). On top
// of it the package provides the paper's combinators:
//
//   - Union (Theorem 4.1, Algorithm 1; Corollary 4.2 for m-way unions)
//   - Intersection (Proposition 4.1, Corollary 4.3) with the
//     poly-relatedness guard
//   - Difference (Proposition 4.2) with the same guard
//   - Projection (Theorem 4.3, Algorithm 2) with cylinder-volume
//     rejection
//   - Fixed-dimension exact evaluation (Section 3: Lemmas 3.1 and 3.2)
//
// A relation that has both a generator and a volume estimator is
// *observable*; the Observable interface captures exactly that.
package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/walk"
)

// ErrGeneratorFailed reports that a generator exhausted its retry budget;
// Definition 2.2 allows failure with probability δ, and callers see that
// failure as this error.
var ErrGeneratorFailed = errors.New("core: generator failed (probability-δ abort)")

// ErrNotPolyRelated reports that an intersection or difference violates
// the poly-relatedness condition of Propositions 4.1/4.2: the acceptance
// rate fell below the configured floor, so the operand is exponentially
// smaller than its source and no efficient generator exists (unless
// P = NP, per the paper's SAT encoding).
var ErrNotPolyRelated = errors.New("core: operands are not poly-related (acceptance below floor)")

// ErrNotWellBounded reports a missing inner or outer ball witness.
var ErrNotWellBounded = errors.New("core: relation is not well-bounded")

// Generator produces almost-uniform samples from a relation discretized
// on a γ-grid, per Definition 2.2.
type Generator interface {
	// Dim returns the ambient dimension of the generated points.
	Dim() int
	// Sample returns an almost-uniform point of the relation. It fails
	// with ErrGeneratorFailed with probability at most δ.
	Sample() (linalg.Vector, error)
	// Grid returns the γ-grid the generator discretizes on.
	Grid() geom.Grid
}

// VolumeEstimator produces (ε, δ)-relative estimates of the volume.
type VolumeEstimator interface {
	// Volume returns an estimate that approximates the true volume with
	// ratio 1+ε with probability at least 1-δ.
	Volume() (float64, error)
}

// Observable is the paper's notion of an observable relation: it has
// both an almost-uniform generator and a relative volume estimator, and
// (like every finitely representable relation) a linear-time membership
// test.
type Observable interface {
	Generator
	VolumeEstimator
	Contains(x linalg.Vector) bool
}

// Params carries the approximation parameters of Definition 2.2.
type Params struct {
	// Gamma controls the grid resolution: |V|·p^d approximates the
	// volume with ratio 1+γ.
	Gamma float64
	// Eps controls the distribution quality (ratio 1+ε to uniform) and
	// the volume estimation ratio.
	Eps float64
	// Delta bounds the failure probability.
	Delta float64
}

// DefaultParams returns the moderate parameters used by the examples and
// experiments: γ = 0.2, ε = 0.25, δ = 0.1.
func DefaultParams() Params { return Params{Gamma: 0.2, Eps: 0.25, Delta: 0.1} }

func (p Params) validate() error {
	if p.Gamma <= 0 || p.Gamma >= 1 || p.Eps <= 0 || p.Eps >= 1 || p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("core: parameters must lie in (0,1): γ=%g ε=%g δ=%g", p.Gamma, p.Eps, p.Delta)
	}
	return nil
}

// Options tunes the machinery shared by all generators. The zero value
// selects faithful-but-practical defaults; the theoretical step budgets
// (O(d¹⁹)) are replaced by engineering schedules validated empirically by
// experiment E2 (see DESIGN.md).
type Options struct {
	Params Params
	// Walk selects the Markov chain; the default is the paper's GridWalk.
	// HitAndRun is offered for experiments needing many samples.
	Walk walk.Kind
	// WalkSteps overrides the per-sample mixing budget (0 = default).
	WalkSteps int
	// RoundingIterations of covariance rounding (0 = default 3; negative
	// disables the isotropy pass, leaving only Chebyshev recentring —
	// used by the rounding ablation A3).
	RoundingIterations int
	// MaxPhaseSamples caps per-phase sampling in the telescoping volume
	// estimator (0 = default 1500).
	MaxPhaseSamples int
	// MaxRounds caps rejection rounds in the union/intersection/
	// difference/projection generators (0 = derived from δ).
	MaxRounds int
	// AcceptanceFloor is the poly-relatedness guard: if the measured
	// acceptance of an intersection/difference falls below it, the
	// generator aborts with ErrNotPolyRelated (0 = default 1e-4).
	AcceptanceFloor float64
	// Interrupt, when non-nil, is polled inside every sampling hot loop
	// — walk mixing epochs, union/intersection/difference/projection
	// acceptance rounds and volume passes. A non-nil return aborts the
	// operation with that error (typically ctx.Err()), making every
	// generator cancellable mid-walk. Interrupt is a per-call concern:
	// it is deliberately excluded from CacheKey, and prepared-sampler
	// caches strip it before preparation so a request's context is never
	// baked into shared geometry.
	Interrupt func() error
}

// interrupted polls the Interrupt hook.
func (o Options) interrupted() error {
	if o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

func (o Options) params() Params {
	p := o.Params
	if p.Gamma == 0 && p.Eps == 0 && p.Delta == 0 {
		return DefaultParams()
	}
	return p
}

func (o Options) maxPhaseSamples() int {
	if o.MaxPhaseSamples <= 0 {
		return 1500
	}
	return o.MaxPhaseSamples
}

func (o Options) acceptanceFloor() float64 {
	if o.AcceptanceFloor <= 0 {
		return 1e-4
	}
	return o.AcceptanceFloor
}

func (o Options) roundingIterations() int {
	if o.RoundingIterations < 0 {
		return 0
	}
	if o.RoundingIterations == 0 {
		return 3
	}
	return o.RoundingIterations
}

// maxRounds derives the retry budget from δ and a per-round success
// lower bound (Theorem 4.1 uses k = 4·ln(1/δ) for per-round success
// ≥ 1/4).
func (o Options) maxRounds(perRound float64) int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	p := o.params()
	if perRound <= 0 || perRound > 1 {
		perRound = 0.25
	}
	k := int(4/perRound) * logCeil(1/p.Delta)
	if k < 16 {
		k = 16
	}
	if k > 1<<20 {
		k = 1 << 20
	}
	return k
}

func logCeil(x float64) int {
	n := 1
	v := 2.718281828459045
	for v < x && n < 64 {
		v *= 2.718281828459045
		n++
	}
	return n
}

// CacheKey returns a canonical fingerprint of every Options field that
// affects the prepared sampling machinery (walk kind, approximation
// parameters, step and rounding budgets). Two Options values with equal
// CacheKeys build interchangeable PreparedRelations, so serving layers
// key their prepared-sampler caches on it.
func (o Options) CacheKey() string {
	p := o.params()
	return fmt.Sprintf("walk=%s;gamma=%g;eps=%g;delta=%g;steps=%d;rounditer=%d;phase=%d;rounds=%d;floor=%g",
		o.Walk, p.Gamma, p.Eps, p.Delta,
		o.WalkSteps, o.roundingIterations(), o.maxPhaseSamples(), o.MaxRounds, o.acceptanceFloor())
}

// NewRNG returns the deterministic generator used across the package
// (re-exported so callers need not import internal/rng).
func NewRNG(seed uint64) *rng.RNG { return rng.New(seed) }
