package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
)

func TestExactVolumeMatchesClosedForms(t *testing.T) {
	cases := []struct {
		name string
		rel  *constraint.Relation
		want float64
	}{
		{"cube3", constraint.MustRelation("C", []string{"x", "y", "z"}, constraint.Cube(3, 0, 2)), 8},
		{"simplex2", constraint.MustRelation("S", []string{"x", "y"}, constraint.Simplex(2, 1)), 0.5},
		{"union", constraint.MustRelation("U", []string{"x"},
			constraint.Cube(1, 0, 2), constraint.Cube(1, 1, 3)), 3},
	}
	for _, c := range cases {
		v, err := ExactVolume(c.rel)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if num.RelErr(v, c.want) > 1e-7 {
			t.Errorf("%s: exact volume = %g, want %g", c.name, v, c.want)
		}
	}
}

func TestGridEnumUniform(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x", "y"}, constraint.Cube(2, 0, 1))
	g, err := NewGridEnum(rel, 0.1, 1<<20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.CellCount() == 0 {
		t.Fatal("no cells enumerated")
	}
	// Exact uniformity over cells: chi-square-ish bound on counts.
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		x, err := g.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[g.Grid().Key(x)]++
	}
	if len(counts) != g.CellCount() {
		t.Errorf("sampled %d distinct cells of %d", len(counts), g.CellCount())
	}
	flat := make([]int, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	if tv := geom.TVDistanceUniform(flat); tv > 0.08 {
		t.Errorf("grid-enum TV distance = %g (must be sampling noise only)", tv)
	}
}

func TestGridEnumVolume(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x", "y"},
		constraint.Simplex(2, 1))
	g, err := NewGridEnum(rel, 0.02, 1<<22, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 0.5) > 0.1 {
		t.Errorf("grid volume = %g, want ~0.5", v)
	}
}

func TestGridEnumBudgetExplosion(t *testing.T) {
	// The expected failure mode when dimension is not fixed: the cell
	// count (R/γ)^d blows past any budget.
	rel := constraint.MustRelation("R", []string{"a", "b", "c", "d", "e", "f"},
		constraint.Cube(6, 0, 1))
	_, err := NewGridEnum(rel, 0.05, 100000, rng.New(3))
	if !errors.Is(err, geom.ErrTooManyCells) {
		t.Errorf("err = %v, want ErrTooManyCells", err)
	}
}

func TestGridEnumUnboundedRejected(t *testing.T) {
	unb := constraint.NewTuple(1, constraint.NewAtom(linalg.Vector{-1}, 0, false))
	rel := constraint.MustRelation("U", []string{"x"}, unb)
	if _, err := NewGridEnum(rel, 0.1, 1000, rng.New(4)); err == nil {
		t.Error("unbounded relation must be rejected")
	}
}

func TestGridEnumBadGamma(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x"}, constraint.Cube(1, 0, 1))
	for _, gamma := range []float64{0, -0.1, 1, 2} {
		if _, err := NewGridEnum(rel, gamma, 1000, rng.New(5)); err == nil {
			t.Errorf("gamma=%g must be rejected", gamma)
		}
	}
}

func TestGridEnumMembership(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x"}, constraint.Cube(1, 0, 1))
	g, err := NewGridEnum(rel, 0.1, 1000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(linalg.Vector{0.5}) || g.Contains(linalg.Vector{2}) {
		t.Error("grid-enum membership wrong")
	}
	if g.Dim() != 1 {
		t.Error("dim wrong")
	}
}

func TestRelationObservableSingleTuple(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x", "y"}, constraint.Cube(2, 0, 2))
	obs, err := NewRelationObservable(rel, rng.New(7), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obs.(*Convex); !ok {
		t.Errorf("single tuple should yield *Convex, got %T", obs)
	}
	v, err := obs.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 4, 0.35) {
		t.Errorf("volume = %g, want ~4", v)
	}
}

func TestRelationObservableUnion(t *testing.T) {
	rel := constraint.MustRelation("R", []string{"x"},
		constraint.Cube(1, 0, 1), constraint.Cube(1, 5, 9))
	obs, err := NewRelationObservable(rel, rng.New(8), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obs.(*Union); !ok {
		t.Errorf("multi-tuple relation should yield *Union, got %T", obs)
	}
	v, err := obs.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 5, 0.35) {
		t.Errorf("volume = %g, want ~5", v)
	}
	// Mass split 1:4.
	inSmall := 0
	const n = 1500
	for i := 0; i < n; i++ {
		x, err := obs.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 2 {
			inSmall++
		}
	}
	if f := float64(inSmall) / n; math.Abs(f-0.2) > 0.06 {
		t.Errorf("small-component fraction = %g, want ~0.2", f)
	}
}

func TestRelationObservablePrunesEmptyTuples(t *testing.T) {
	emptyT := constraint.NewTuple(1,
		constraint.NewAtom(linalg.Vector{1}, 0, false),
		constraint.NewAtom(linalg.Vector{-1}, -1, false))
	rel := constraint.MustRelation("R", []string{"x"}, constraint.Cube(1, 0, 1), emptyT)
	obs, err := NewRelationObservable(rel, rng.New(9), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := obs.(*Convex); !ok {
		t.Errorf("after pruning, one tuple remains: want *Convex, got %T", obs)
	}
}

func TestRelationObservableEmptyRejected(t *testing.T) {
	emptyT := constraint.NewTuple(1,
		constraint.NewAtom(linalg.Vector{1}, 0, false),
		constraint.NewAtom(linalg.Vector{-1}, -1, false))
	rel := constraint.MustRelation("E", []string{"x"}, emptyT)
	if _, err := NewRelationObservable(rel, rng.New(10), fastOpts()); err == nil {
		t.Error("empty relation must be rejected")
	}
}

func TestTupleObservable(t *testing.T) {
	c, err := NewTupleObservable(constraint.Cube(2, 0, 1), rng.New(11), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	x, err := c.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(x) {
		t.Error("tuple observable sample outside")
	}
}

func TestFixedDimVsRandomizedAgreement(t *testing.T) {
	// Section 3 vs Section 4 on the same relation: exact volume and DFK
	// estimate must agree within the ratio bound.
	rel := constraint.MustRelation("R", []string{"x", "y"},
		constraint.Cube(2, 0, 2), constraint.Cube(2, 1, 3))
	exact, err := ExactVolume(rel)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := NewRelationObservable(rel, rng.New(12), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	est, err := obs.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(est, exact, 0.4) {
		t.Errorf("estimate %g vs exact %g", est, exact)
	}
}
