package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Union is the paper's union generator (Theorem 4.1, Algorithm 1;
// Corollary 4.2 for m members): choose a member with probability
// proportional to its estimated volume, sample inside it, and accept the
// point only when the chosen member is the canonical one — the
// smallest-index member containing the point (the paper's j(x)). The
// acceptance test makes overlapping regions count once, exactly the
// Karp–Luby #DNF argument in the geometric setting.
type Union struct {
	members []Observable
	weights []float64 // cached member volume estimates μ̂_i
	total   float64
	opts    Options
	r       *rng.RNG

	rounds, accepts int // acceptance diagnostics
	// roundsHist buckets rounds-per-accepted-sample (see RoundsBucket);
	// memberDraws counts accepted draws per canonical member.
	roundsHist  [RoundsHistBuckets]int64
	memberDraws []int64

	vol      float64
	volKnown bool
	volAcc   VolumeAccuracy
}

var _ Observable = (*Union)(nil)

// NewUnion builds the generator for S_1 ∪ ... ∪ S_m. All members must
// share a dimension. Member volume estimates are computed eagerly (step 1
// of Algorithm 1).
func NewUnion(members []Observable, r *rng.RNG, opts Options) (*Union, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: union of zero relations")
	}
	d := members[0].Dim()
	for _, m := range members[1:] {
		if m.Dim() != d {
			return nil, fmt.Errorf("core: union members of mixed dimension %d vs %d", d, m.Dim())
		}
	}
	if err := opts.params().validate(); err != nil {
		return nil, err
	}
	u := &Union{members: members, opts: opts, r: r}
	u.weights = make([]float64, len(members))
	u.memberDraws = make([]int64, len(members))
	for i, m := range members {
		v, err := m.Volume()
		if err != nil {
			return nil, fmt.Errorf("core: union member %d volume: %w", i, err)
		}
		u.weights[i] = v
		u.total += v
	}
	if u.total <= 0 {
		return nil, fmt.Errorf("core: union has zero total volume")
	}
	return u, nil
}

// Dim returns the ambient dimension.
func (u *Union) Dim() int { return u.members[0].Dim() }

// Grid returns the finest member grid (the "greatest common grid" of the
// paper's proof, realised as the minimum step since members are
// poly-related after pruning exponentially small ones).
func (u *Union) Grid() geom.Grid {
	g := u.members[0].Grid()
	for _, m := range u.members[1:] {
		if mg := m.Grid(); mg.Step < g.Step {
			g = mg
		}
	}
	return g
}

// Contains reports membership in the union.
func (u *Union) Contains(x linalg.Vector) bool {
	return u.canonicalIndex(x) >= 0
}

// canonicalIndex returns the paper's j(x): the smallest member index
// containing x, or -1.
func (u *Union) canonicalIndex(x linalg.Vector) int {
	for i, m := range u.members {
		if m.Contains(x) {
			return i
		}
	}
	return -1
}

// Sample implements Algorithm 1: it retries the choose-sample-accept
// round until acceptance, failing after the δ-derived round budget. The
// per-round success probability is at least 1/m (each point is accepted
// from exactly one of the ≤ m members covering it).
func (u *Union) Sample() (linalg.Vector, error) {
	rounds := u.opts.maxRounds(1 / float64(len(u.members)))
	for k := 0; k < rounds; k++ {
		if err := u.opts.interrupted(); err != nil {
			return nil, err
		}
		u.rounds++
		j := u.pickMember()
		x, err := u.members[j].Sample()
		if err != nil {
			continue
		}
		if u.canonicalIndex(x) == j {
			u.accepts++
			u.roundsHist[RoundsBucket(int64(k+1))]++
			u.memberDraws[j]++
			return x, nil
		}
	}
	return nil, fmt.Errorf("%w: union after %d rounds", ErrGeneratorFailed, rounds)
}

// pickMember draws j with probability μ̂_j / Σ μ̂_i.
func (u *Union) pickMember() int {
	t := u.r.Float64() * u.total
	acc := 0.0
	for i, w := range u.weights {
		acc += w
		if t < acc {
			return i
		}
	}
	return len(u.weights) - 1
}

// AcceptanceRate reports accepted rounds / total rounds; Theorem 4.1
// lower-bounds the per-round success by 1/2 for two members (1/m for m).
func (u *Union) AcceptanceRate() float64 {
	if u.rounds == 0 {
		return 0
	}
	return float64(u.accepts) / float64(u.rounds)
}

// Volume estimates μ(∪S_i) = (Σ μ̂_i) · Pr[accept] — the Karp–Luby
// estimator of Theorem 4.2: the acceptance probability of a round is
// exactly μ(T)/Σμ(S_i) because each point is accepted from exactly one
// member.
func (u *Union) Volume() (float64, error) {
	if u.volKnown {
		return u.vol, nil
	}
	p := u.opts.params()
	// Acceptance is at least 1/m; estimate it within relative ε/2.
	m := float64(len(u.members))
	n := geom.ChernoffSampleCount(p.Eps/(2*m), p.Delta)
	capped := false
	if cap := u.opts.maxPhaseSamples() * 4; n > cap {
		n = cap
		capped = true
	}
	accept := 0
	for i := 0; i < n; i++ {
		if err := u.opts.interrupted(); err != nil {
			return 0, err
		}
		j := u.pickMember()
		x, err := u.members[j].Sample()
		if err != nil {
			continue
		}
		if u.canonicalIndex(x) == j {
			accept++
		}
	}
	if accept == 0 {
		return 0, fmt.Errorf("%w: union volume estimation saw no acceptance", ErrGeneratorFailed)
	}
	u.vol = u.total * float64(accept) / float64(n)
	u.volKnown = true
	// Ledger: the union acceptance pass delivers additive half-width
	// a at confidence 1−δ with n samples; relative ε contribution is
	// 2m·a (acceptance ≥ 1/m). Fold in the worst member pass — the
	// member weights are themselves estimates.
	u.volAcc = VolumeAccuracy{
		RequestedEps:   p.Eps,
		RequestedDelta: p.Delta,
		AchievedEps:    2 * m * achievedHalfWidth(n, p.Delta),
		AchievedDelta:  p.Delta,
		Capped:         capped,
		Probes:         int64(n),
	}
	worst := VolumeAccuracy{}
	for _, mem := range u.members {
		if a, ok := VolumeAccuracyOf(mem); ok {
			if a.AchievedEps > worst.AchievedEps {
				worst.AchievedEps = a.AchievedEps
			}
			worst.Capped = worst.Capped || a.Capped
			worst.Probes += a.Probes
		}
	}
	u.volAcc.merge(worst)
	return u.vol, nil
}

// MemberVolumes exposes the cached μ̂_i (diagnostics and experiments).
func (u *Union) MemberVolumes() []float64 {
	out := make([]float64, len(u.weights))
	copy(out, u.weights)
	return out
}
