package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/linalg"
)

// This file provides the two standard amplification constructions over
// the paper's generators and estimators:
//
//   - MedianVolume powers an (ε, 1/4)-estimator into an (ε, δ)-estimator
//     by taking the median of O(ln 1/δ) independent runs — the classical
//     Chernoff/median argument behind the "ln(1/δ) bound on complexity is
//     a classical assumption" remark in Section 2.
//   - SampleMany fans independent generators out over goroutines; each
//     worker owns its own generator (walk state is not shareable), which
//     is exactly the independence the estimators assume.

// Factory builds an independent generator/estimator from a seed. Each
// call must return a fresh instance with its own randomness.
type Factory func(seed uint64) (Observable, error)

// MedianVolume runs k independent volume estimators and returns the
// median estimate. With per-run failure probability 1/4 (the default δ
// of cheap runs), k = 18·ln(1/δ) pushes the failure probability of the
// median below δ; callers pick k directly to keep budgets explicit.
func MedianVolume(factory Factory, k int, baseSeed uint64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("core: MedianVolume needs k >= 1")
	}
	type res struct {
		v   float64
		err error
	}
	results := make([]res, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obs, err := factory(baseSeed + uint64(1000003*i))
			if err != nil {
				results[i] = res{err: err}
				return
			}
			v, err := obs.Volume()
			results[i] = res{v: v, err: err}
		}(i)
	}
	wg.Wait()
	vals := make([]float64, 0, k)
	var firstErr error
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		vals = append(vals, r.v)
	}
	// The median is meaningful as long as a majority of runs succeeded.
	if len(vals) <= k/2 {
		return 0, fmt.Errorf("core: MedianVolume: %d/%d runs failed: %w", k-len(vals), k, firstErr)
	}
	sort.Float64s(vals)
	return vals[len(vals)/2], nil
}

// SampleMany draws n samples using w parallel workers, each with an
// independent generator from factory. Sample order is deterministic for
// a fixed (factory, n, w, baseSeed) tuple: worker i produces the samples
// with index ≡ i (mod w) from its own stream.
func SampleMany(factory Factory, n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	return SampleManyVia(func(fn func()) { go fn() }, factory, n, w, baseSeed)
}

// Submitter schedules fn for execution, possibly on a shared worker
// pool; it must eventually run fn exactly once. The trivial submitter is
// func(fn func()) { go fn() }.
type Submitter func(fn func())

// SampleManyVia is SampleMany with the worker goroutines scheduled
// through submit instead of spawned directly. The output is identical to
// SampleMany for the same (factory, n, w, baseSeed) regardless of the
// submitter — each logical worker still owns the seed baseSeed + 7919·i
// and the sample indices ≡ i (mod w) — so a serving layer can coalesce
// many concurrent requests onto one bounded pool without changing what
// any request returns.
func SampleManyVia(submit Submitter, factory Factory, n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	return SampleManyCtx(context.Background(), submit, factory, n, w, baseSeed)
}

// SampleManyCtx is SampleManyVia with cooperative cancellation: every
// worker polls ctx between samples (and the factories it is given are
// expected to bind ctx into their generators, so cancellation also cuts
// a sample short mid-walk). On cancellation the call returns ctx.Err()
// once every worker has stopped — workers never outlive the call, so a
// cancelled batch cannot leak pool capacity.
func SampleManyCtx(ctx context.Context, submit Submitter, factory Factory, n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	if n <= 0 {
		return nil, nil
	}
	if w <= 0 {
		w = 1
	}
	if w > n {
		w = n
	}
	out := make([]linalg.Vector, n)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		submit(func() {
			defer wg.Done()
			// A panicking factory or sampler must not leave the caller
			// with silently-nil points (or, on a shared pool, kill the
			// process): surface it as this worker's error.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("core: sampling worker %d panicked: %v", i, r)
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			obs, err := factory(baseSeed + uint64(7919*i))
			if err != nil {
				errs[i] = err
				return
			}
			for j := i; j < n; j += w {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				x, err := obs.Sample()
				if err != nil {
					errs[i] = err
					return
				}
				out[j] = x
			}
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
