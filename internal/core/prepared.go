package core

import (
	"context"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// PreparedRelation is the cache-friendly form of a generalized relation's
// sampling machinery: every tuple's rounding map, well-boundedness
// witnesses and volume estimate are computed once at preparation time,
// so binding a request seed costs only walker initialisation. This is
// what a serving layer caches per (relation, Options) — the expensive
// setup is paid on the first request and amortised across all later
// ones, while each bound Observable keeps the per-seed determinism of a
// cold NewRelationObservable.
type PreparedRelation struct {
	name    string
	members []*PreparedConvex
	weights []float64
	total   float64
	dim     int
	opts    Options

	// Bounding box of the (pruned) relation, captured at preparation
	// time: the deterministic seed of the quality layer's cell
	// partition.
	bboxLo, bboxHi linalg.Vector
	bboxOK         bool
}

// PrepareRelation runs the full setup for a well-bounded generalized
// relation: prune empty tuples, round every remaining tuple and estimate
// its volume (step 1 of Algorithm 1, normally repeated per generator).
// All randomness is drawn from r, so a fixed preparation seed yields a
// fixed prepared geometry.
//
// This mirrors NewRelationObservable in relation.go (same pruning,
// per-tuple loop and error shape); the paths stay separate because the
// cold path must not pay the eager volume pass and its RNG stream
// consumption must remain reproducible. Mirror edits in both.
func PrepareRelation(rel *constraint.Relation, r *rng.RNG, opts Options) (*PreparedRelation, error) {
	if err := opts.params().validate(); err != nil {
		return nil, err
	}
	pruned := rel.PruneEmpty()
	if len(pruned.Tuples) == 0 {
		return nil, fmt.Errorf("core: relation %q is empty", rel.Name)
	}
	p := &PreparedRelation{name: rel.Name, opts: opts, dim: pruned.Tuples[0].Dim()}
	p.bboxLo, p.bboxHi, p.bboxOK = pruned.BoundingBox()
	for i, t := range pruned.Tuples {
		pc, err := PrepareConvexPolytope(polytope.FromTuple(t), r.Split(), opts)
		if err != nil {
			return nil, fmt.Errorf("core: relation %q tuple %d: %w", rel.Name, i, err)
		}
		p.members = append(p.members, pc)
		p.weights = append(p.weights, pc.vol)
		p.total += pc.vol
	}
	if p.total <= 0 {
		return nil, fmt.Errorf("core: relation %q has zero total volume", rel.Name)
	}
	return p, nil
}

// Name returns the prepared relation's name.
func (p *PreparedRelation) Name() string { return p.name }

// Dim returns the ambient dimension.
func (p *PreparedRelation) Dim() int { return p.dim }

// Tuples returns the number of non-empty tuples under the union.
func (p *PreparedRelation) Tuples() int { return len(p.members) }

// MemberVolumes returns the per-tuple volume estimates μ̂_i computed at
// preparation time.
func (p *PreparedRelation) MemberVolumes() []float64 {
	out := make([]float64, len(p.weights))
	copy(out, p.weights)
	return out
}

// BoundingBox returns the axis-aligned bounding box of the prepared
// (pruned) relation, captured at preparation time; ok is false for an
// unbounded description.
func (p *PreparedRelation) BoundingBox() (lo, hi linalg.Vector, ok bool) {
	return p.bboxLo, p.bboxHi, p.bboxOK
}

// VolumeAccuracy reports the (ε, δ) ledger of the preparation-time
// volume passes: the worst member's achieved ε, with caps and probes
// accumulated. A multi-tuple relation's bound Union adds its own
// acceptance pass on top (see Union.VolumeAccuracy).
func (p *PreparedRelation) VolumeAccuracy() (VolumeAccuracy, bool) {
	var out VolumeAccuracy
	any := false
	for _, pc := range p.members {
		a, ok := pc.VolumeAccuracy()
		if !ok {
			continue
		}
		if !any {
			out = a
			any = true
			continue
		}
		if a.AchievedEps > out.AchievedEps {
			out.AchievedEps = a.AchievedEps
		}
		out.Capped = out.Capped || a.Capped
		out.Probes += a.Probes
	}
	return out, any
}

// ScaleMemberWeight multiplies member i's cached volume estimate by
// factor, skewing the mixture weights every later Bind hands to the
// union generator. This is a fault-injection hook for the quality
// auditor's tests — a deliberately biased sampler whose draws are
// still inside the relation but no longer uniform — and must never be
// called on a production path.
func (p *PreparedRelation) ScaleMemberWeight(i int, factor float64) {
	if i < 0 || i >= len(p.members) || factor <= 0 {
		return
	}
	p.members[i].vol *= factor
	p.weights[i] = p.members[i].vol
	p.total = 0
	for _, w := range p.weights {
		p.total += w
	}
}

// PreparedVolume returns the preparation-time volume estimate when it
// is already the whole relation's estimate — a single-tuple relation,
// where no union-acceptance pass is needed. Multi-tuple unions report
// ok = false: their total must be corrected for overlap by the
// Karp–Luby acceptance pass of a bound Observable.
func (p *PreparedRelation) PreparedVolume() (v float64, ok bool) {
	if len(p.members) == 1 && p.members[0].volKnown {
		return p.members[0].vol, true
	}
	return 0, false
}

// BindMember instantiates a generator for the i-th non-empty tuple
// alone — the per-disjunct view a reconstruction needs (Algorithm 5
// builds one hull per convex piece, not one hull over the union).
func (p *PreparedRelation) BindMember(i int, r *rng.RNG) (Observable, error) {
	if i < 0 || i >= len(p.members) {
		return nil, fmt.Errorf("core: relation %q has no tuple %d", p.name, i)
	}
	return p.members[i].Bind(r)
}

// Bind instantiates an Observable over the prepared geometry with its
// own randomness: one walker per tuple plus the union combinator with
// the cached member weights. Cost is O(tuples · d) — no rounding, no
// volume passes.
func (p *PreparedRelation) Bind(r *rng.RNG) (Observable, error) {
	return p.BindInterrupt(r, p.opts.Interrupt)
}

// BindCtx is Bind with every hot loop of the returned Observable —
// walk epochs, union acceptance rounds, volume passes — polling ctx, so
// an in-flight Sample or Volume call aborts with ctx.Err() within one
// walk epoch of cancellation. The RNG stream is identical to Bind's:
// the same seed produces the same points, cancellable or not.
func (p *PreparedRelation) BindCtx(ctx context.Context, r *rng.RNG) (Observable, error) {
	if ctx == nil || ctx.Done() == nil {
		return p.Bind(r)
	}
	return p.BindInterrupt(r, ctx.Err)
}

// BindInterrupt is Bind with an explicit interrupt hook (nil = none).
func (p *PreparedRelation) BindInterrupt(r *rng.RNG, interrupt func() error) (Observable, error) {
	members := make([]Observable, 0, len(p.members))
	for i, pc := range p.members {
		c, err := pc.BindInterrupt(r.Split(), interrupt)
		if err != nil {
			return nil, fmt.Errorf("core: binding tuple %d of %q: %w", i, p.name, err)
		}
		members = append(members, c)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	// Member volumes are already cached on the bound Convex instances, so
	// NewUnion's eager weighting pass costs nothing here.
	opts := p.opts
	opts.Interrupt = interrupt
	return NewUnion(members, r.Split(), opts)
}
