package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
)

func TestAccessors(t *testing.T) {
	a := mustConvex(t, constraint.Cube(2, 0, 2), 301)
	b := mustConvex(t, constraint.Cube(2, 1, 3), 302)
	if a.RoundingMap() == nil {
		t.Error("RoundingMap must be set")
	}
	if a.SandwichRatio() < 1 {
		t.Error("sandwich ratio must be >= 1")
	}
	if _, err := a.Sample(); err != nil {
		t.Fatal(err)
	}
	if a.AcceptanceRate() < 0 || a.AcceptanceRate() > 1 {
		t.Error("acceptance out of range")
	}

	u, err := NewUnion([]Observable{a, b}, rng.New(303), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim() != 2 {
		t.Error("union dim")
	}
	if !u.Contains(linalg.Vector{0.5, 0.5}) || u.Contains(linalg.Vector{9, 9}) {
		t.Error("union Contains")
	}
	mv := u.MemberVolumes()
	if len(mv) != 2 || mv[0] <= 0 {
		t.Errorf("member volumes = %v", mv)
	}

	in, err := NewIntersection([]Observable{a, b}, rng.New(304), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if in.Dim() != 2 || in.Grid().Step <= 0 {
		t.Error("intersection accessors")
	}
	if _, err := in.Sample(); err != nil {
		t.Fatal(err)
	}
	if in.AcceptanceRate() <= 0 {
		t.Error("intersection acceptance not tracked")
	}

	df, err := NewDifference(a, polytope.FromTuple(constraint.Cube(2, 1, 3)), rng.New(305), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if df.Dim() != 2 || df.Grid().Step <= 0 {
		t.Error("difference accessors")
	}
	if _, err := df.Sample(); err != nil {
		t.Fatal(err)
	}
	if df.AcceptanceRate() <= 0 {
		t.Error("difference acceptance not tracked")
	}

	if NewRNG(1) == nil || NewRNGFromSplit(rng.New(2)) == nil {
		t.Error("RNG helpers")
	}
}

func TestProjectionMultiCoordinateElimination(t *testing.T) {
	// Eliminate TWO coordinates at once: the adaptive normalisation path
	// (calibrate with pilot). Project the 4-simplex onto (x0, x1): the
	// triangle {x0, x1 >= 0, x0 + x1 <= 1}, area 1/2.
	p := polytope.FromTuple(constraint.Simplex(4, 1))
	pr, err := NewProjection(p, []int{0, 1}, rng.New(306), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tri := polytope.FromTuple(constraint.Simplex(2, 1))
	grown := tri.Clone()
	for k := range grown.B {
		grown.B[k] += 2 * pr.Grid().Step
	}
	for i := 0; i < 100; i++ {
		y, err := pr.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !grown.Contains(y) {
			t.Fatalf("2-coordinate projection sample %v outside the triangle", y)
		}
	}
	// Mean of x0 over the triangle is 1/3.
	var mean float64
	const n = 800
	for i := 0; i < n; i++ {
		y, err := pr.Sample()
		if err != nil {
			t.Fatal(err)
		}
		mean += y[0] / n
	}
	if mean < 0.25 || mean > 0.42 {
		t.Errorf("projected mean x0 = %g, want ~1/3", mean)
	}
	v, err := pr.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 0.5, 0.6) {
		t.Errorf("2-coordinate projected area = %g, want ~0.5", v)
	}
}

func TestRoundingMapVolumeIdentity(t *testing.T) {
	// vol(S) = vol(Q(S)) / |det Q| exactly for a polytope.
	p := polytope.FromTuple(constraint.Box(linalg.Vector{3, -1}, linalg.Vector{8, 4}))
	c, err := NewConvexPolytope(p, rng.New(307), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image(c.RoundingMap())
	vi, err := img.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if got := vi / c.RoundingMap().DetAbs(); num.RelErr(got, 25) > 1e-6 {
		t.Errorf("volume through rounding map = %g, want 25", got)
	}
}
