package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/rounding"
	"repro/internal/walk"
)

// Convex is the Dyer–Frieze–Kannan generator and volume estimator for a
// well-bounded convex body given by a membership oracle (the paper's
// fundamental theorem in Section 2). The body is first well-rounded by an
// affine map Q, then a random walk on the γ-grid of Q(K) produces almost
// uniform grid points; a telescoping product of ball-intersection ratios
// estimates the volume.
type Convex struct {
	body    walk.Body
	rounded *rounding.Rounded
	grid    geom.Grid
	opts    Options
	r       *rng.RNG

	walker *walk.Walker
	mixed  bool
	burnIn int
	thin   int

	// volStats accumulates the effort of volume-pass probe walkers,
	// which are separate from the sampling walker (see phaseRatio).
	volStats SampleStats

	// cached volume estimate (Volume is deterministic per generator
	// instance once computed) and its (ε, δ) ledger.
	vol      float64
	volKnown bool
	volAcc   VolumeAccuracy
}

var _ Observable = (*Convex)(nil)

// PreparedConvex is the reusable product of the expensive DFK setup for
// one convex body: the rounding map, the sandwiching witnesses, the
// γ-grid and the walk step budget — everything about the generator that
// does not depend on the sampling seed. Bind attaches a fresh RNG and
// returns a ready generator without repeating the setup; a prepared body
// may be bound many times (the server's sampler cache relies on this).
//
// If the volume estimate was computed at preparation time (see
// PrepareConvexPolytope), every bound generator shares it, so warm
// Volume calls are free.
type PreparedConvex struct {
	body    walk.Body
	rounded *rounding.Rounded
	grid    geom.Grid
	opts    Options
	burnIn  int
	thin    int

	vol      float64
	volKnown bool
	volAcc   VolumeAccuracy
}

// prepareConvex runs the seedable-but-reusable part of NewConvex: the
// witness validation, the rounding pass (which consumes randomness from
// r) and the grid/step-budget derivation. No walker is created.
func prepareConvex(body walk.Body, center linalg.Vector, innerR, outerR float64, r *rng.RNG, opts Options) (*PreparedConvex, error) {
	if err := opts.params().validate(); err != nil {
		return nil, err
	}
	if innerR <= 0 || outerR <= 0 {
		return nil, ErrNotWellBounded
	}
	d := body.Dim()
	ro, err := rounding.Round(body, center, innerR, outerR, r.Split(), rounding.Options{
		Iterations: opts.roundingIterations(),
	})
	if err != nil {
		return nil, fmt.Errorf("core: rounding failed: %w", err)
	}
	p := opts.params()
	// Grid on the rounded body (inner radius 1): step O(γ/d^{3/2}).
	grid := geom.NewGrid(d, geom.StepForGamma(p.Gamma, d, ro.InnerRadius))
	pc := &PreparedConvex{body: body, rounded: ro, grid: grid, opts: opts}
	pc.burnIn, pc.thin = pc.stepBudget()
	return pc, nil
}

// Dim returns the ambient dimension of the prepared body.
func (p *PreparedConvex) Dim() int { return p.body.Dim() }

// VolumeKnown reports whether the preparation included a volume pass.
func (p *PreparedConvex) VolumeKnown() bool { return p.volKnown }

// Bind instantiates a generator over the prepared geometry with its own
// randomness. The cost is one walker initialisation — O(d) — versus the
// rounding + volume passes of a cold NewConvexPolytope call.
func (p *PreparedConvex) Bind(r *rng.RNG) (*Convex, error) {
	return p.BindInterrupt(r, p.opts.Interrupt)
}

// BindInterrupt is Bind with a per-generator interrupt hook: the bound
// generator polls it inside its walk epochs and volume passes, aborting
// with the hook's error. The RNG stream consumed is identical to Bind's,
// so the hook changes only when a walk can stop, never what it produces.
func (p *PreparedConvex) BindInterrupt(r *rng.RNG, interrupt func() error) (*Convex, error) {
	c := &Convex{
		body:     p.body,
		rounded:  p.rounded,
		grid:     p.grid,
		opts:     p.opts,
		r:        r,
		burnIn:   p.burnIn,
		thin:     p.thin,
		vol:      p.vol,
		volKnown: p.volKnown,
		volAcc:   p.volAcc,
	}
	c.opts.Interrupt = interrupt
	if err := c.initWalker(); err != nil {
		return nil, err
	}
	return c, nil
}

// NewConvex builds the DFK machinery for a convex membership oracle with
// explicit well-boundedness witnesses: an inner ball (center, innerR) and
// an enclosing radius outerR.
func NewConvex(body walk.Body, center linalg.Vector, innerR, outerR float64, r *rng.RNG, opts Options) (*Convex, error) {
	pc, err := prepareConvex(body, center, innerR, outerR, r, opts)
	if err != nil {
		return nil, err
	}
	return pc.Bind(r)
}

// PrepareConvexPolytope is the cache-friendly constructor: it pays the
// rounding pass and the telescoping volume estimation once, up front,
// and returns a PreparedConvex whose Bind yields generators that share
// both. The witnesses are derived exactly as in NewConvexPolytope.
func PrepareConvexPolytope(poly *polytope.Polytope, r *rng.RNG, opts Options) (*PreparedConvex, error) {
	center, innerR, outer, err := polytopeWitnesses(poly)
	if err != nil {
		return nil, err
	}
	pc, err := prepareConvex(poly, center, innerR, outer, r, opts)
	if err != nil {
		return nil, err
	}
	probe, err := pc.Bind(r)
	if err != nil {
		return nil, err
	}
	v, err := probe.Volume()
	if err != nil {
		return nil, fmt.Errorf("core: prepared volume pass: %w", err)
	}
	pc.vol = v
	pc.volKnown = true
	pc.volAcc = probe.volAcc
	return pc, nil
}

// polytopeWitnesses derives well-boundedness witnesses for an H-polytope
// from its Chebyshev ball and an enclosing ball.
func polytopeWitnesses(poly *polytope.Polytope) (center linalg.Vector, innerR, outer float64, err error) {
	center, innerR, err = poly.Chebyshev()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: %w: %v", ErrNotWellBounded, err)
	}
	if innerR <= 1e-12 {
		return nil, 0, 0, fmt.Errorf("core: %w: zero inner radius (flat polytope)", ErrNotWellBounded)
	}
	bc, outerR, err := poly.EnclosingBall()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("core: %w: %v", ErrNotWellBounded, err)
	}
	// Enclose from the Chebyshev centre: |c-bc| + R bounds the body.
	return center, innerR, center.Dist(bc) + outerR, nil
}

// NewConvexPolytope builds the DFK machinery for an H-polytope, deriving
// the well-boundedness witnesses from its Chebyshev ball and bounding
// box.
func NewConvexPolytope(poly *polytope.Polytope, r *rng.RNG, opts Options) (*Convex, error) {
	center, innerR, outer, err := polytopeWitnesses(poly)
	if err != nil {
		return nil, err
	}
	return NewConvex(poly, center, innerR, outer, r, opts)
}

func (p *PreparedConvex) stepBudget() (burnIn, thin int) {
	d := p.body.Dim()
	ratio := p.rounded.Ratio()
	if p.opts.WalkSteps > 0 {
		return p.opts.WalkSteps, maxInt(p.opts.WalkSteps/4, 1)
	}
	switch p.opts.Walk {
	case walk.GridWalk:
		diam := int(2*p.rounded.OuterRadius/p.grid.Step) + 1
		burnIn = walk.DefaultGridSteps(d, ratio, diam)
		return burnIn, maxInt(burnIn/8, 64)
	default:
		burnIn = walk.DefaultHitAndRunSteps(d, ratio)
		return burnIn, maxInt(burnIn/4, 8)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (c *Convex) initWalker() error {
	d := c.body.Dim()
	cfg := walk.Config{
		Kind:        c.opts.Walk,
		Grid:        c.grid,
		OuterRadius: c.rounded.OuterRadius,
		Interrupt:   c.opts.Interrupt,
	}
	if cfg.Kind == walk.BallWalk {
		cfg.Delta = c.rounded.InnerRadius / math.Sqrt(float64(d))
	}
	w, err := walk.New(c.rounded.Body, make(linalg.Vector, d), c.r.Split(), cfg)
	if err != nil {
		return fmt.Errorf("core: starting walk: %w", err)
	}
	c.walker = w
	c.mixed = false
	return nil
}

// Dim returns the ambient dimension.
func (c *Convex) Dim() int { return c.body.Dim() }

// Grid returns the γ-grid (in rounded space) the generator walks on.
func (c *Convex) Grid() geom.Grid { return c.grid }

// RoundingMap returns the affine map from original space to rounded
// space, Q in the paper's description of DFK.
func (c *Convex) RoundingMap() *linalg.AffineMap { return c.rounded.Map }

// Contains reports membership in the original body.
func (c *Convex) Contains(x linalg.Vector) bool { return c.body.Contains(x) }

// SampleRounded returns an almost-uniform point of the rounded body
// Q(K); for the grid walk this is a vertex of the γ-grid graph, which is
// the exact object of Definition 2.2.
func (c *Convex) SampleRounded() (linalg.Vector, error) {
	steps := c.thin
	burning := !c.mixed
	if burning {
		steps = c.burnIn
		c.mixed = true
	}
	pt := c.walker.Sample(steps)
	if err := c.walker.Err(); err != nil {
		if burning {
			// The burn-in was aborted mid-epoch: the walker is not mixed,
			// and a later retry on this generator must pay the full
			// burn-in again rather than silently sampling an unmixed
			// chain with thin steps only.
			c.mixed = false
		}
		return nil, err
	}
	return pt, nil
}

// Sample returns an almost-uniform point of the original body (the
// rounded sample mapped back through Q⁻¹).
func (c *Convex) Sample() (linalg.Vector, error) {
	y, err := c.SampleRounded()
	if err != nil {
		return nil, err
	}
	return c.rounded.Map.Invert(y), nil
}

// Volume returns the (ε, δ)-relative volume estimate via the telescoping
// ball-intersection ratios of Dyer–Frieze–Kannan:
//
//	vol(Q(K)) = vol(B(0,1)) · Π_i vol(K_i)/vol(K_{i-1}),
//
// with K_i = Q(K) ∩ B(0, (1+1/d)^i) so each ratio lies in [1/e, 1], each
// estimated by a Chernoff-bounded sampling pass. The original volume is
// recovered through |det Q|.
func (c *Convex) Volume() (float64, error) {
	if c.volKnown {
		return c.vol, nil
	}
	v, err := c.estimateRoundedVolume()
	if err != nil {
		return 0, err
	}
	c.vol = v / c.rounded.Map.DetAbs()
	c.volKnown = true
	return c.vol, nil
}

func (c *Convex) estimateRoundedVolume() (float64, error) {
	d := c.body.Dim()
	p := c.opts.params()
	inner := c.rounded.InnerRadius
	outer := c.rounded.OuterRadius
	// Phase radii (1+1/d)^i from inner to outer.
	radii := []float64{inner}
	growth := 1 + 1/float64(d)
	for radii[len(radii)-1] < outer {
		next := radii[len(radii)-1] * growth
		if next >= outer {
			next = outer
		}
		radii = append(radii, next)
	}
	q := len(radii) - 1
	if q == 0 {
		// The body is the inner ball (up to rounding): closed form, no
		// sampling error at all.
		c.volAcc = VolumeAccuracy{
			RequestedEps: p.Eps, RequestedDelta: p.Delta, AchievedDelta: p.Delta,
		}
		return volBallClamped(d, inner), nil
	}
	// Per-phase sample count from Hoeffding at additive error
	// a = ε/(2e·q), capped for practicality (see Options.MaxPhaseSamples).
	n := geom.ChernoffSampleCount(p.Eps/(2*math.E*float64(q)), p.Delta/float64(q))
	capped := false
	if cap := c.opts.maxPhaseSamples(); n > cap {
		n = cap
		capped = true
	}
	// Ledger: n samples per phase deliver additive half-width a_ach at
	// per-phase confidence 1−δ/q; the telescoping product turns q such
	// phases into relative error ≈ 2e·q·a_ach at total confidence 1−δ.
	c.volAcc = VolumeAccuracy{
		RequestedEps:   p.Eps,
		RequestedDelta: p.Delta,
		AchievedEps:    2 * math.E * float64(q) * achievedHalfWidth(n, p.Delta/float64(q)),
		AchievedDelta:  p.Delta,
		Capped:         capped,
		Probes:         int64(q) * int64(n),
	}
	logVol := math.Log(volBallClamped(d, inner))
	for i := 1; i <= q; i++ {
		ratio, err := c.phaseRatio(radii[i-1], radii[i], n)
		if err != nil {
			return 0, err
		}
		logVol -= math.Log(ratio)
	}
	return math.Exp(logVol), nil
}

// volBallClamped is the unit-ball-volume helper (radius r, dimension d).
func volBallClamped(d int, r float64) float64 {
	lg, _ := math.Lgamma(float64(d)/2 + 1)
	return math.Exp(float64(d)/2*math.Log(math.Pi) + float64(d)*math.Log(r) - lg)
}

// phaseRatio estimates vol(K ∩ B(0, rSmall)) / vol(K ∩ B(0, rBig)) by
// sampling the larger body and counting hits in the smaller ball.
func (c *Convex) phaseRatio(rSmall, rBig float64, n int) (float64, error) {
	d := c.body.Dim()
	big := walk.IntersectionBody{Bodies: []walk.Body{
		c.rounded.Body,
		walk.BallBody{Center: make(linalg.Vector, d), Radius: rBig},
	}}
	cfg := walk.Config{Kind: walk.HitAndRun, OuterRadius: rBig, Interrupt: c.opts.Interrupt}
	if c.opts.Walk == walk.GridWalk {
		// Stay faithful to the configured walk for the phase sampling
		// when explicitly requested; a finer grid keeps thin shells
		// reachable.
		cfg = walk.Config{Kind: walk.GridWalk, Grid: c.grid, OuterRadius: rBig, Interrupt: c.opts.Interrupt}
	}
	w, err := walk.New(big, make(linalg.Vector, d), c.r.Split(), cfg)
	if err != nil {
		return 0, fmt.Errorf("core: phase walk: %w", err)
	}
	// The probe walker's effort belongs to this generator's ledger even
	// when the phase aborts mid-run.
	defer func() { c.volStats.mergeWalk(w.Stats()) }()
	burn, thin := c.burnIn, c.thin
	w.Run(burn)
	if err := w.Err(); err != nil {
		return 0, err
	}
	hits := 0
	r2 := rSmall * rSmall
	for i := 0; i < n; i++ {
		pt := w.Run(thin)
		if err := w.Err(); err != nil {
			return 0, err
		}
		var norm2 float64
		for _, v := range pt {
			norm2 += v * v
		}
		if norm2 <= r2 {
			hits++
		}
	}
	if hits == 0 {
		// The ratio is at least (rSmall/rBig)^d >= 1/e by construction;
		// zero hits means the walk under-mixed. Fall back to the
		// analytic lower bound rather than returning a zero volume.
		return math.Pow(rSmall/rBig, float64(c.body.Dim())), nil
	}
	return float64(hits) / float64(n), nil
}

// AcceptanceRate exposes the walker's diagnostic acceptance rate.
func (c *Convex) AcceptanceRate() float64 { return c.walker.AcceptanceRate() }

// SandwichRatio exposes the rounded body's R/r sandwiching ratio — the
// quantity the well-rounding step exists to control.
func (c *Convex) SandwichRatio() float64 { return c.rounded.Ratio() }
