package core

import "repro/internal/walk"

// SampleStats aggregates the measured effort behind a generator: walk
// steps and proposal acceptances, membership/chord oracle invocations,
// interrupt polls, and rejection rounds/acceptances of the composite
// generators (union canonical-index rounds, intersection/difference
// trials, projection rounds). These are the per-stage observations the
// observability layer attributes to canonical plan keys and a
// cost-based planner prices sub-plans with.
type SampleStats struct {
	// WalkSteps and WalkAccepted aggregate the random-walk step and
	// proposal-acceptance counters across every walker the generator
	// (and its members) drives, including volume-pass probe walkers.
	WalkSteps    int64
	WalkAccepted int64
	// OracleCalls counts membership/chord oracle invocations.
	OracleCalls int64
	// InterruptPolls counts interrupt-hook polls inside walk runs.
	InterruptPolls int64
	// Rounds and Accepts count composite rejection rounds (Algorithm 1
	// union rounds, intersection/difference trials, Algorithm 2
	// projection rounds) and their acceptances.
	Rounds  int64
	Accepts int64
	// RoundsHist is the rejection-round distribution: bucket i counts
	// accepted samples that needed 2^i … 2^(i+1)−1 rounds (last bucket
	// open). A fixed-size array keeps SampleStats comparable.
	RoundsHist [RoundsHistBuckets]int64
}

// RoundsHistBuckets is the number of buckets in the rejection-round
// histogram.
const RoundsHistBuckets = 8

// RoundsBucket returns the histogram bucket for a rounds-per-sample
// count.
func RoundsBucket(rounds int64) int {
	b := 0
	for rounds > 1 && b < RoundsHistBuckets-1 {
		rounds >>= 1
		b++
	}
	return b
}

// Merge adds o into s.
func (s *SampleStats) Merge(o SampleStats) {
	s.WalkSteps += o.WalkSteps
	s.WalkAccepted += o.WalkAccepted
	s.OracleCalls += o.OracleCalls
	s.InterruptPolls += o.InterruptPolls
	s.Rounds += o.Rounds
	s.Accepts += o.Accepts
	for i, v := range o.RoundsHist {
		s.RoundsHist[i] += v
	}
}

// mergeWalk adds a walker's counters into s.
func (s *SampleStats) mergeWalk(ws walk.Stats) {
	s.WalkSteps += int64(ws.Steps)
	s.WalkAccepted += int64(ws.Accepted)
	s.OracleCalls += int64(ws.OracleCalls)
	s.InterruptPolls += int64(ws.InterruptPolls)
}

// IsZero reports whether nothing was recorded.
func (s SampleStats) IsZero() bool { return s == SampleStats{} }

// EffortReporter is implemented by generators that expose their
// accumulated effort. All core observables implement it; callers
// type-assert because Observable is also satisfied by lightweight
// adapters (tests, reconstruction shims) with nothing to report.
type EffortReporter interface {
	Effort() SampleStats
}

// EffortOf returns o's effort when it reports one, zero otherwise.
func EffortOf(o any) SampleStats {
	if er, ok := o.(EffortReporter); ok {
		return er.Effort()
	}
	return SampleStats{}
}

// Effort reports the walker's counters plus every volume-pass probe
// walker this generator ran.
func (c *Convex) Effort() SampleStats {
	var s SampleStats
	s.mergeWalk(c.walker.Stats())
	s.Merge(c.volStats)
	return s
}

// Effort reports the union's own rejection rounds plus the aggregated
// member efforts.
func (u *Union) Effort() SampleStats {
	s := SampleStats{Rounds: int64(u.rounds), Accepts: int64(u.accepts), RoundsHist: u.roundsHist}
	for _, m := range u.members {
		s.Merge(EffortOf(m))
	}
	return s
}

// MemberDraws reports the accepted canonical draws per member: sample
// i landed on its canonical member j(x). For an unbiased generator the
// shares converge to the canonical-cover volumes vol(S_i \ ∪_{j<i}S_j)
// over vol(∪S_i) — the reference the quality auditor checks against.
func (u *Union) MemberDraws() []int64 {
	out := make([]int64, len(u.memberDraws))
	copy(out, u.memberDraws)
	return out
}

// MemberEffort reports member i's effort alone — the per-disjunct
// attribution the executor records under "planKey#i".
func (u *Union) MemberEffort(i int) SampleStats {
	if i < 0 || i >= len(u.members) {
		return SampleStats{}
	}
	return EffortOf(u.members[i])
}

// Members returns the number of union members.
func (u *Union) Members() int { return len(u.members) }

// Effort reports the intersection's trials plus member efforts.
func (in *Intersection) Effort() SampleStats {
	s := SampleStats{Rounds: int64(in.trials), Accepts: int64(in.accepts)}
	for _, m := range in.members {
		s.Merge(EffortOf(m))
	}
	return s
}

// Effort reports the difference's trials plus both operands' efforts.
func (df *Difference) Effort() SampleStats {
	s := SampleStats{Rounds: int64(df.trials), Accepts: int64(df.accepts)}
	s.Merge(EffortOf(df.s1))
	s.Merge(EffortOf(df.s2))
	return s
}

// Effort reports the projection's Algorithm 2 rounds plus the source
// generator's walk effort.
func (pr *Projection) Effort() SampleStats {
	s := SampleStats{Rounds: int64(pr.rounds), Accepts: int64(pr.accepts)}
	s.Merge(pr.src.Effort())
	return s
}
