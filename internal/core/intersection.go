package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Intersection is the paper's intersection generator (Proposition 4.1,
// Corollary 4.3 for m members): sample from the member with the smallest
// estimated volume and accept points that lie in all others. It is an
// almost-uniform generator exactly when the intersection is poly-related
// to min(S_1, ..., S_m); the acceptance-floor guard turns the paper's
// sufficient condition into a runtime check that aborts with
// ErrNotPolyRelated otherwise (the SAT encoding of §4.1.3 shows the
// restriction is necessary unless P = NP).
type Intersection struct {
	members []Observable
	base    int // index of the smallest member (the paper's j with μ_j minimal)
	opts    Options
	r       *rng.RNG

	trials, accepts int

	vol      float64
	volKnown bool
}

var _ Observable = (*Intersection)(nil)

// NewIntersection builds the generator for S_1 ∩ ... ∩ S_m.
func NewIntersection(members []Observable, r *rng.RNG, opts Options) (*Intersection, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: intersection of zero relations")
	}
	d := members[0].Dim()
	for _, m := range members[1:] {
		if m.Dim() != d {
			return nil, fmt.Errorf("core: intersection members of mixed dimension %d vs %d", d, m.Dim())
		}
	}
	if err := opts.params().validate(); err != nil {
		return nil, err
	}
	in := &Intersection{members: members, opts: opts, r: r}
	best, bestVol := 0, -1.0
	for i, m := range members {
		v, err := m.Volume()
		if err != nil {
			return nil, fmt.Errorf("core: intersection member %d volume: %w", i, err)
		}
		if bestVol < 0 || v < bestVol {
			best, bestVol = i, v
		}
	}
	in.base = best
	return in, nil
}

// Dim returns the ambient dimension.
func (in *Intersection) Dim() int { return in.members[0].Dim() }

// Grid returns the base member's grid (poly-relatedness makes it a
// γ-grid for the intersection, as in the proof of Proposition 4.1).
func (in *Intersection) Grid() geom.Grid { return in.members[in.base].Grid() }

// Contains reports membership in every member.
func (in *Intersection) Contains(x linalg.Vector) bool {
	for _, m := range in.members {
		if !m.Contains(x) {
			return false
		}
	}
	return true
}

// BaseIndex reports which member is sampled from (diagnostics).
func (in *Intersection) BaseIndex() int { return in.base }

// Sample rejects from the smallest member. The round budget is derived
// from the acceptance floor: falling below it triggers the
// poly-relatedness abort rather than silent non-termination.
func (in *Intersection) Sample() (linalg.Vector, error) {
	floor := in.opts.acceptanceFloor()
	rounds := in.opts.maxRounds(floor)
	for k := 0; k < rounds; k++ {
		if err := in.opts.interrupted(); err != nil {
			return nil, err
		}
		in.trials++
		x, err := in.members[in.base].Sample()
		if err != nil {
			continue
		}
		if in.accept(x) {
			in.accepts++
			return x, nil
		}
		// Poly-relatedness guard: after enough trials with an acceptance
		// rate under the floor, the intersection is exponentially small
		// relative to the base member.
		if in.trials > 64 && float64(in.accepts)/float64(in.trials) < floor {
			return nil, fmt.Errorf("%w: intersection acceptance %d/%d", ErrNotPolyRelated, in.accepts, in.trials)
		}
	}
	return nil, fmt.Errorf("%w: intersection after %d rounds", ErrGeneratorFailed, rounds)
}

func (in *Intersection) accept(x linalg.Vector) bool {
	for i, m := range in.members {
		if i == in.base {
			continue
		}
		if !m.Contains(x) {
			return false
		}
	}
	return true
}

// AcceptanceRate reports the measured acceptance (≈ μ(T)/μ(S_min), the
// poly-relatedness ratio itself).
func (in *Intersection) AcceptanceRate() float64 {
	if in.trials == 0 {
		return 0
	}
	return float64(in.accepts) / float64(in.trials)
}

// Volume estimates μ(T) = μ̂(S_min) · acceptance, with the same
// poly-relatedness guard as Sample.
func (in *Intersection) Volume() (float64, error) {
	if in.volKnown {
		return in.vol, nil
	}
	baseVol, err := in.members[in.base].Volume()
	if err != nil {
		return 0, err
	}
	p := in.opts.params()
	n := geom.ChernoffSampleCount(p.Eps*in.opts.acceptanceFloor(), p.Delta)
	if cap := in.opts.maxPhaseSamples() * 4; n > cap {
		n = cap
	}
	accept := 0
	for i := 0; i < n; i++ {
		if err := in.opts.interrupted(); err != nil {
			return 0, err
		}
		in.trials++
		x, err := in.members[in.base].Sample()
		if err != nil {
			continue
		}
		if in.accept(x) {
			accept++
			in.accepts++
		}
	}
	rate := float64(accept) / float64(n)
	if rate < in.opts.acceptanceFloor() {
		return 0, fmt.Errorf("%w: intersection volume acceptance %g", ErrNotPolyRelated, rate)
	}
	in.vol = baseVol * rate
	in.volKnown = true
	return in.vol, nil
}

// Difference is the paper's difference generator (Proposition 4.2):
// sample from S1 and keep points outside S2. Observable when
// μ(S1 − S2) is poly-related to μ(S1), enforced by the same
// acceptance-floor guard.
type Difference struct {
	s1 Observable
	s2 interface {
		Contains(linalg.Vector) bool
	}
	opts Options
	r    *rng.RNG

	trials, accepts int

	vol      float64
	volKnown bool
}

var _ Observable = (*Difference)(nil)

// NewDifference builds the generator for S1 − S2. Only membership is
// needed for S2.
func NewDifference(s1 Observable, s2 interface {
	Contains(linalg.Vector) bool
}, r *rng.RNG, opts Options) (*Difference, error) {
	if err := opts.params().validate(); err != nil {
		return nil, err
	}
	return &Difference{s1: s1, s2: s2, opts: opts, r: r}, nil
}

// Dim returns the ambient dimension.
func (df *Difference) Dim() int { return df.s1.Dim() }

// Grid returns S1's grid (the proof of Proposition 4.2 uses exactly it).
func (df *Difference) Grid() geom.Grid { return df.s1.Grid() }

// Contains reports x ∈ S1 − S2.
func (df *Difference) Contains(x linalg.Vector) bool {
	return df.s1.Contains(x) && !df.s2.Contains(x)
}

// Sample rejects S2 points from S1 samples.
func (df *Difference) Sample() (linalg.Vector, error) {
	floor := df.opts.acceptanceFloor()
	rounds := df.opts.maxRounds(floor)
	for k := 0; k < rounds; k++ {
		if err := df.opts.interrupted(); err != nil {
			return nil, err
		}
		df.trials++
		x, err := df.s1.Sample()
		if err != nil {
			continue
		}
		if !df.s2.Contains(x) {
			df.accepts++
			return x, nil
		}
		if df.trials > 64 && float64(df.accepts)/float64(df.trials) < floor {
			return nil, fmt.Errorf("%w: difference acceptance %d/%d", ErrNotPolyRelated, df.accepts, df.trials)
		}
	}
	return nil, fmt.Errorf("%w: difference after %d rounds", ErrGeneratorFailed, rounds)
}

// AcceptanceRate reports measured acceptance ≈ μ(S1−S2)/μ(S1).
func (df *Difference) AcceptanceRate() float64 {
	if df.trials == 0 {
		return 0
	}
	return float64(df.accepts) / float64(df.trials)
}

// Volume estimates μ(S1 − S2) = μ̂(S1) · acceptance.
func (df *Difference) Volume() (float64, error) {
	if df.volKnown {
		return df.vol, nil
	}
	v1, err := df.s1.Volume()
	if err != nil {
		return 0, err
	}
	p := df.opts.params()
	n := geom.ChernoffSampleCount(p.Eps*df.opts.acceptanceFloor(), p.Delta)
	if cap := df.opts.maxPhaseSamples() * 4; n > cap {
		n = cap
	}
	accept := 0
	for i := 0; i < n; i++ {
		if err := df.opts.interrupted(); err != nil {
			return 0, err
		}
		df.trials++
		x, err := df.s1.Sample()
		if err != nil {
			continue
		}
		if !df.s2.Contains(x) {
			accept++
			df.accepts++
		}
	}
	rate := float64(accept) / float64(n)
	if rate < df.opts.acceptanceFloor() {
		return 0, fmt.Errorf("%w: difference volume acceptance %g", ErrNotPolyRelated, rate)
	}
	df.vol = v1 * rate
	df.volKnown = true
	return df.vol, nil
}
