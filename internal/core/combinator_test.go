package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
)

func mustConvex(t *testing.T, tup constraint.Tuple, seed uint64) *Convex {
	t.Helper()
	c, err := NewConvexPolytope(polytope.FromTuple(tup), rng.New(seed), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUnionDisjointVolume(t *testing.T) {
	// [0,1]^2 ∪ [5,6]x[0,2]: volume 3.
	a := mustConvex(t, constraint.Cube(2, 0, 1), 1)
	b := mustConvex(t, constraint.Box(linalg.Vector{5, 0}, linalg.Vector{6, 2}), 2)
	u, err := NewUnion([]Observable{a, b}, rng.New(3), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := u.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 3, 0.35) {
		t.Errorf("disjoint union volume = %g, want ~3", v)
	}
}

func TestUnionOverlapVolume(t *testing.T) {
	// [0,2]^2 ∪ [1,3]^2: exact volume 7 (Karp-Luby must not double
	// count the overlap).
	a := mustConvex(t, constraint.Cube(2, 0, 2), 4)
	b := mustConvex(t, constraint.Cube(2, 1, 3), 5)
	u, err := NewUnion([]Observable{a, b}, rng.New(6), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := u.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 7, 0.35) {
		t.Errorf("overlapping union volume = %g, want ~7", v)
	}
}

func TestUnionSamplesProportionally(t *testing.T) {
	// Disconnected components of volumes 1 and 4: sample mass must split
	// ~1:4 (a direct random walk would be stuck in one component — the
	// paper's motivating remark for Theorem 4.1).
	a := mustConvex(t, constraint.Cube(2, 0, 1), 7)
	b := mustConvex(t, constraint.Box(linalg.Vector{10, 0}, linalg.Vector{12, 2}), 8)
	u, err := NewUnion([]Observable{a, b}, rng.New(9), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	inA := 0
	const n = 2000
	for i := 0; i < n; i++ {
		x, err := u.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 5 {
			inA++
		}
	}
	frac := float64(inA) / n
	if math.Abs(frac-0.2) > 0.05 {
		t.Errorf("component A fraction = %g, want ~0.2", frac)
	}
}

func TestUnionOverlapNotOversampled(t *testing.T) {
	// [0,2]x[0,1] ∪ [1,3]x[0,1]: overlap [1,2] must carry 1/3 of the
	// mass, not 1/2 (the canonical-index acceptance de-duplicates).
	a := mustConvex(t, constraint.Box(linalg.Vector{0, 0}, linalg.Vector{2, 1}), 10)
	b := mustConvex(t, constraint.Box(linalg.Vector{1, 0}, linalg.Vector{3, 1}), 11)
	u, err := NewUnion([]Observable{a, b}, rng.New(12), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	inOverlap := 0
	const n = 3000
	for i := 0; i < n; i++ {
		x, err := u.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] >= 1 && x[0] <= 2 {
			inOverlap++
		}
	}
	frac := float64(inOverlap) / n
	if math.Abs(frac-1.0/3) > 0.05 {
		t.Errorf("overlap fraction = %g, want ~1/3", frac)
	}
}

func TestUnionAcceptanceBound(t *testing.T) {
	// Theorem 4.1: per-round success ≥ 1/2 for two members (here the
	// overlap is half of each, acceptance = vol(T)/Σvol = 3/4... ≥ 1/2).
	a := mustConvex(t, constraint.Cube(2, 0, 2), 13)
	b := mustConvex(t, constraint.Cube(2, 1, 3), 14)
	u, err := NewUnion([]Observable{a, b}, rng.New(15), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := u.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if got := u.AcceptanceRate(); got < 0.5 {
		t.Errorf("union acceptance = %g, theorem guarantees >= 1/2 per round", got)
	}
}

func TestUnionMWay(t *testing.T) {
	// Corollary 4.2: m-way union; five disjoint unit squares.
	var members []Observable
	for i := 0; i < 5; i++ {
		lo := float64(3 * i)
		members = append(members, mustConvex(t,
			constraint.Box(linalg.Vector{lo, 0}, linalg.Vector{lo + 1, 1}), uint64(20+i)))
	}
	u, err := NewUnion(members, rng.New(30), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := u.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 5, 0.35) {
		t.Errorf("5-way union volume = %g, want ~5", v)
	}
	counts := make([]int, 5)
	const n = 2500
	for i := 0; i < n; i++ {
		x, err := u.Sample()
		if err != nil {
			t.Fatal(err)
		}
		counts[int(x[0]/3)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/n-0.2) > 0.05 {
			t.Errorf("square %d fraction = %g, want ~0.2", i, float64(c)/n)
		}
	}
}

func TestUnionErrors(t *testing.T) {
	if _, err := NewUnion(nil, rng.New(1), fastOpts()); err == nil {
		t.Error("empty union must fail")
	}
	a := mustConvex(t, constraint.Cube(2, 0, 1), 1)
	b := mustConvex(t, constraint.Cube(3, 0, 1), 2)
	if _, err := NewUnion([]Observable{a, b}, rng.New(3), fastOpts()); err == nil {
		t.Error("mixed-dimension union must fail")
	}
}

func TestUnionGridIsFinest(t *testing.T) {
	a := mustConvex(t, constraint.Cube(2, 0, 1), 40)
	big := mustConvex(t, constraint.Cube(2, 0, 100), 41)
	u, err := NewUnion([]Observable{a, big}, rng.New(42), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if u.Grid().Step > a.Grid().Step+1e-12 {
		t.Error("union grid must be at least as fine as the finest member")
	}
}

func TestIntersectionPolyRelated(t *testing.T) {
	// [0,2]^2 ∩ [1,3]^2 = [1,2]^2: ratio 1/4 to the smaller operand —
	// comfortably poly-related.
	a := mustConvex(t, constraint.Cube(2, 0, 2), 50)
	b := mustConvex(t, constraint.Cube(2, 1, 3), 51)
	in, err := NewIntersection([]Observable{a, b}, rng.New(52), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		x, err := in.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 1-1e-6 || x[0] > 2+1e-6 || x[1] < 1-1e-6 || x[1] > 2+1e-6 {
			t.Fatalf("intersection sample %v outside [1,2]^2", x)
		}
	}
	v, err := in.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 1, 0.4) {
		t.Errorf("intersection volume = %g, want ~1", v)
	}
}

func TestIntersectionSamplesFromSmaller(t *testing.T) {
	small := mustConvex(t, constraint.Cube(2, 0, 1), 53)
	big := mustConvex(t, constraint.Cube(2, -5, 6), 54)
	in, err := NewIntersection([]Observable{big, small}, rng.New(55), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if in.BaseIndex() != 1 {
		t.Errorf("base index = %d, want 1 (the smaller member)", in.BaseIndex())
	}
}

func TestIntersectionNotPolyRelated(t *testing.T) {
	// Overlap is a sliver of relative size 1e-6: the guard must abort
	// with ErrNotPolyRelated instead of running forever.
	a := mustConvex(t, constraint.Box(linalg.Vector{0, 0}, linalg.Vector{1, 1}), 56)
	b := mustConvex(t, constraint.Box(linalg.Vector{1 - 1e-6, 0}, linalg.Vector{2, 1}), 57)
	opts := fastOpts()
	opts.AcceptanceFloor = 1e-3
	opts.MaxRounds = 3000
	in, err := NewIntersection([]Observable{a, b}, rng.New(58), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.Sample()
	if !errors.Is(err, ErrNotPolyRelated) && !errors.Is(err, ErrGeneratorFailed) {
		t.Errorf("thin intersection error = %v, want ErrNotPolyRelated", err)
	}
}

func TestIntersectionEmptyOverlapVolumeFails(t *testing.T) {
	a := mustConvex(t, constraint.Cube(2, 0, 1), 59)
	b := mustConvex(t, constraint.Cube(2, 5, 6), 60)
	opts := fastOpts()
	opts.MaxRounds = 2000
	in, err := NewIntersection([]Observable{a, b}, rng.New(61), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Volume(); err == nil {
		t.Error("disjoint intersection volume must fail")
	}
}

func TestIntersectionContains(t *testing.T) {
	a := mustConvex(t, constraint.Cube(2, 0, 2), 62)
	b := mustConvex(t, constraint.Cube(2, 1, 3), 63)
	in, err := NewIntersection([]Observable{a, b}, rng.New(64), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !in.Contains(linalg.Vector{1.5, 1.5}) || in.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("intersection membership wrong")
	}
}

func TestDifferenceShell(t *testing.T) {
	// [0,3]^2 minus [1,2]^2: volume 8, all samples outside the hole.
	outer := mustConvex(t, constraint.Cube(2, 0, 3), 70)
	hole := polytope.FromTuple(constraint.Cube(2, 1, 2))
	df, err := NewDifference(outer, hole, rng.New(71), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		x, err := df.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if hole.Contains(x) {
			t.Fatalf("difference sample %v inside the hole", x)
		}
	}
	v, err := df.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 8, 0.35) {
		t.Errorf("shell volume = %g, want ~8", v)
	}
	if !df.Contains(linalg.Vector{0.5, 0.5}) || df.Contains(linalg.Vector{1.5, 1.5}) {
		t.Error("difference membership wrong")
	}
}

func TestDifferenceNotPolyRelated(t *testing.T) {
	// S2 covers S1 except a 1e-6 sliver.
	s1 := mustConvex(t, constraint.Cube(2, 0, 1), 72)
	s2 := polytope.FromTuple(constraint.Box(linalg.Vector{-1, -1}, linalg.Vector{1 - 1e-6, 2}))
	opts := fastOpts()
	opts.AcceptanceFloor = 1e-3
	opts.MaxRounds = 3000
	df, err := NewDifference(s1, s2, rng.New(73), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = df.Sample()
	if !errors.Is(err, ErrNotPolyRelated) && !errors.Is(err, ErrGeneratorFailed) {
		t.Errorf("thin difference error = %v, want ErrNotPolyRelated", err)
	}
}

func TestDifferenceDisconnected(t *testing.T) {
	// [0,3]x[0,1] minus the middle third: two disconnected pieces, both
	// must receive mass (a single random walk could not cross).
	s1 := mustConvex(t, constraint.Box(linalg.Vector{0, 0}, linalg.Vector{3, 1}), 74)
	s2 := polytope.FromTuple(constraint.Box(linalg.Vector{1, -1}, linalg.Vector{2, 2}))
	df, err := NewDifference(s1, s2, rng.New(75), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	left, right := 0, 0
	const n = 1500
	for i := 0; i < n; i++ {
		x, err := df.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if x[0] < 1 {
			left++
		} else {
			right++
		}
	}
	lf := float64(left) / n
	if math.Abs(lf-0.5) > 0.07 {
		t.Errorf("left piece fraction = %g, want ~0.5", lf)
	}
}
