package core

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// This file implements Section 3 of the paper: when the dimension is
// assumed fixed, every generalized relation is observable by exact,
// deterministic means — exact volume computation (Lemma 3.1) and uniform
// sampling by grid-cell enumeration (Lemma 3.2). Both are exponential in
// the dimension, which is why they carry explicit budgets; the
// experiments (E11) measure the crossover against the randomized
// machinery of Section 4.

// ExactVolume computes the exact volume of a generalized relation by
// signed inclusion–exclusion over its tuples with Lasserre's recursion
// per intersection — the package's realisation of Lemma 3.1 (the paper
// uses the Bieri–Nef sweep-plane; both are exact and polynomial only for
// fixed dimension, see DESIGN.md).
func ExactVolume(rel *constraint.Relation) (float64, error) {
	return polytope.RelationVolume(rel)
}

// GridEnum is Lemma 3.2's sampler: decompose the bounding box of the
// relation into γ-cells, enumerate the cells belonging to the relation,
// and choose among them uniformly. The distribution over cells is
// *exactly* uniform (ε = 0); the cost is the (R/γ)^d enumeration, which
// is polynomial only for fixed d.
type GridEnum struct {
	rel    *constraint.Relation
	grid   geom.Grid
	points []linalg.Vector
	r      *rng.RNG
}

var _ Observable = (*GridEnum)(nil)

// NewGridEnum enumerates the grid cells of rel within its bounding box.
// budget caps the number of cells inspected; exceeding it returns
// geom.ErrTooManyCells wrapped with dimension context (the expected
// failure mode when d is not fixed).
func NewGridEnum(rel *constraint.Relation, gamma float64, budget int, r *rng.RNG) (*GridEnum, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, fmt.Errorf("core: gamma must lie in (0,1), got %g", gamma)
	}
	lo, hi, ok := rel.BoundingBox()
	if !ok {
		return nil, ErrNotWellBounded
	}
	d := rel.Arity()
	// Cell size γ as in Lemma 3.2's proof ("a regular decomposition of
	// the bounding box into cubes of size γ"), scaled by the box extent
	// so γ is a relative resolution.
	maxExtent := 0.0
	for j := range lo {
		if e := hi[j] - lo[j]; e > maxExtent {
			maxExtent = e
		}
	}
	if maxExtent <= 0 {
		return nil, ErrNotWellBounded
	}
	grid := geom.NewGrid(d, gamma*maxExtent)
	pts, err := grid.Enumerate(lo, hi, rel.Contains, budget)
	if err != nil {
		return nil, fmt.Errorf("core: fixed-dimension enumeration in dimension %d: %w", d, err)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: relation has no grid cells at resolution γ=%g", gamma)
	}
	return &GridEnum{rel: rel, grid: grid, points: pts, r: r}, nil
}

// Dim returns the relation arity.
func (g *GridEnum) Dim() int { return g.rel.Arity() }

// Grid returns the enumeration grid.
func (g *GridEnum) Grid() geom.Grid { return g.grid }

// Contains defers to the relation.
func (g *GridEnum) Contains(x linalg.Vector) bool { return g.rel.Contains(x) }

// CellCount returns |V|, the number of enumerated grid points.
func (g *GridEnum) CellCount() int { return len(g.points) }

// Sample returns an exactly uniform grid point of the relation (each
// needed sample is one random index — Lemma 3.2's "choose a cube in S
// with probability 1/n").
func (g *GridEnum) Sample() (linalg.Vector, error) {
	return g.points[g.r.Intn(len(g.points))].Clone(), nil
}

// Volume returns |V| · p^d, the grid measure of the relation (a (1+γ)
// approximation by the γ-grid definition; deterministic).
func (g *GridEnum) Volume() (float64, error) {
	return float64(len(g.points)) * g.grid.CellVolume(), nil
}
