package core

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// NewRelationObservable builds the paper's generator for an arbitrary
// well-bounded generalized relation: every relation is a finite union of
// generalized tuples (DNF), each tuple is convex and gets the DFK
// generator, and the union combinator of Theorem 4.1 / Corollary 4.2
// stitches them together. Empty tuples are pruned first (the proof's
// "exponentially smaller relations can be considered empty" step is
// realised by the LP emptiness check).
//
// PrepareRelation in prepared.go mirrors this setup for the cacheable
// prepare/bind split; mirror edits in both.
func NewRelationObservable(rel *constraint.Relation, r *rng.RNG, opts Options) (Observable, error) {
	pruned := rel.PruneEmpty()
	if len(pruned.Tuples) == 0 {
		return nil, fmt.Errorf("core: relation %q is empty", rel.Name)
	}
	members := make([]Observable, 0, len(pruned.Tuples))
	for i, t := range pruned.Tuples {
		conv, err := NewConvexPolytope(polytope.FromTuple(t), r.Split(), opts)
		if err != nil {
			return nil, fmt.Errorf("core: relation %q tuple %d: %w", rel.Name, i, err)
		}
		members = append(members, conv)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return NewUnion(members, r.Split(), opts)
}

// NewTupleObservable builds the DFK generator for a single generalized
// tuple (a convex relation).
func NewTupleObservable(t constraint.Tuple, r *rng.RNG, opts Options) (*Convex, error) {
	return NewConvexPolytope(polytope.FromTuple(t), r, opts)
}
