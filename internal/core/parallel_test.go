package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/constraint"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
)

func cubeFactory(d int, lo, hi float64) Factory {
	return func(seed uint64) (Observable, error) {
		return NewConvexPolytope(polytope.FromTuple(constraint.Cube(d, lo, hi)), rng.New(seed), fastOpts())
	}
}

func TestMedianVolume(t *testing.T) {
	v, err := MedianVolume(cubeFactory(3, -1, 1), 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !num.WithinRatio(v, 8, 0.35) {
		t.Errorf("median volume = %g, want ~8", v)
	}
}

func TestMedianVolumeRejectsBadK(t *testing.T) {
	if _, err := MedianVolume(cubeFactory(2, 0, 1), 0, 1); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestMedianVolumeMajorityFailure(t *testing.T) {
	var calls atomic.Int64
	factory := func(seed uint64) (Observable, error) {
		calls.Add(1)
		return nil, errors.New("boom")
	}
	if _, err := MedianVolume(factory, 5, 1); err == nil {
		t.Error("all-failing factory must error")
	}
	if calls.Load() != 5 {
		t.Errorf("factory called %d times, want 5", calls.Load())
	}
}

func TestSampleManyParallel(t *testing.T) {
	pts, err := SampleMany(cubeFactory(2, 0, 1), 400, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 400 {
		t.Fatalf("samples = %d", len(pts))
	}
	cube := constraint.Cube(2, 0, 1)
	var meanX float64
	for _, p := range pts {
		if p == nil || !cube.Contains(p) {
			t.Fatalf("bad sample %v", p)
		}
		meanX += p[0] / 400
	}
	if meanX < 0.4 || meanX > 0.6 {
		t.Errorf("parallel sample mean = %g, want ~0.5", meanX)
	}
}

func TestSampleManyDeterministic(t *testing.T) {
	a, err := SampleMany(cubeFactory(2, 0, 1), 50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleMany(cubeFactory(2, 0, 1), 50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i], 0) {
			t.Fatal("SampleMany must be deterministic for fixed seeds")
		}
	}
}

func TestSampleManyEdgeCases(t *testing.T) {
	if pts, err := SampleMany(cubeFactory(2, 0, 1), 0, 4, 1); err != nil || pts != nil {
		t.Error("n=0 must return nil, nil")
	}
	// More workers than samples.
	pts, err := SampleMany(cubeFactory(2, 0, 1), 3, 16, 1)
	if err != nil || len(pts) != 3 {
		t.Errorf("n=3 w=16: %d samples, err=%v", len(pts), err)
	}
	// Zero workers defaults to one.
	pts, err = SampleMany(cubeFactory(2, 0, 1), 5, 0, 1)
	if err != nil || len(pts) != 5 {
		t.Errorf("w=0: %d samples, err=%v", len(pts), err)
	}
}

func TestSampleManyPropagatesErrors(t *testing.T) {
	factory := func(seed uint64) (Observable, error) {
		return nil, errors.New("no generator")
	}
	if _, err := SampleMany(factory, 10, 2, 1); err == nil {
		t.Error("factory errors must propagate")
	}
}
