package experiments

import (
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

// Ablation experiments A1–A3 isolate the design choices DESIGN.md calls
// out: the union combinator vs a direct walk on a disconnected-ish body
// (the paper's own motivating remark in §4.1.1), the choice of random
// walk, and the rounding pass.

func init() {
	registry["A1"] = runA1
	registry["A2"] = runA2
	registry["A3"] = runA3
}

// runA1: §4.1.1's remark — "consider two large convex sets linked by a
// thin tube T: starting from S, the probability to walk through the
// bridge and reach S' is likely to be small." A direct walk on the
// dumbbell concentrates in the component it starts in; the union
// generator (Theorem 4.1) splits mass by volume regardless of the tube.
func runA1(cfg Config) (*Table, error) {
	widths := []float64{0.2, 0.05, 0.01, 0.002}
	samples := 1200
	budget := 400 // steps per direct-walk sample
	if cfg.Quick {
		widths = []float64{0.2, 0.01}
		samples = 400
	}
	t := &Table{
		ID:      "A1",
		Title:   "ablation: direct walk vs union generator on the dumbbell",
		Claim:   "a direct walk gets trapped by thin connectors while the union generator splits mass by volume (§4.1.1's remark / Theorem 4.1)",
		Columns: []string{"tube width", "direct walk right-mass", "union right-mass", "ideal"},
	}
	for wi, width := range widths {
		rel := dataset.Dumbbell(2, 10, width)
		// Direct walk: independent hit-and-run chains over the union's
		// membership oracle, each restarted in the left cube with a fixed
		// step budget — the fraction ending in the right component
		// measures cross-component mixing (a single long chain would
		// only measure the random time of its first crossing).
		body := relationBody{rel}
		r := rng.New(cfg.Seed + uint64(wi))
		directRight := 0
		for i := 0; i < samples; i++ {
			w, err := walk.New(body, linalg.Vector{0, 0}, r, walk.Config{
				Kind: walk.HitAndRun, OuterRadius: 12,
			})
			if err != nil {
				return nil, err
			}
			p := w.Sample(budget)
			if p[0] > 5 {
				directRight++
			}
		}
		// Union generator.
		obs, err := core.NewRelationObservable(rel, r.Split(), fastOpts())
		if err != nil {
			return nil, err
		}
		unionRight := 0
		for i := 0; i < samples; i++ {
			p, err := obs.Sample()
			if err != nil {
				return nil, err
			}
			if p[0] > 5 {
				unionRight++
			}
		}
		// Ideal right-mass: right cube + half of the tube over the total.
		// The tube spans x ∈ [1, 8] with cross-section [−w, w]: volume
		// 7·2w, half of it 7w.
		exact, err := core.ExactVolume(rel)
		if err != nil {
			return nil, err
		}
		rightVol := 4.0 + 7*width
		ideal := rightVol / exact
		t.Rows = append(t.Rows, []string{
			f(width),
			f(float64(directRight) / float64(samples)),
			f(float64(unionRight) / float64(samples)),
			f(ideal),
		})
	}
	t.Notes = append(t.Notes,
		"as the tube thins, the direct walk's right-mass collapses toward 0 while the union generator stays at the ideal split")
	return t, nil
}

// relationBody adapts a generalized relation to a walk membership
// oracle (the union as one body — exactly what Theorem 4.1 warns about).
type relationBody struct{ rel *constraint.Relation }

func (b relationBody) Dim() int                      { return b.rel.Arity() }
func (b relationBody) Contains(x linalg.Vector) bool { return b.rel.Contains(x) }

// runA2: walk choice — distribution quality per unit of work for the
// grid walk (the paper's), the ball walk, and hit-and-run, at an equal
// membership-call budget.
func runA2(cfg Config) (*Table, error) {
	budgets := []int{100, 400, 1600}
	samples := 3000
	if cfg.Quick {
		budgets = []int{100, 800}
		samples = 1000
	}
	kinds := []walk.Kind{walk.GridWalk, walk.BallWalk, walk.HitAndRun}
	t := &Table{
		ID:      "A2",
		Title:   "ablation: walk kind vs distribution quality at equal step budget",
		Claim:   "hit-and-run mixes fastest per step; the grid walk (the paper's) converges too but needs more steps; all reach uniformity",
		Columns: []string{"walk", "steps", "TV distance"},
	}
	tri := polytope.New([]linalg.Vector{{-1, 0}, {0, -1}, {1, 1}}, []float64{0, 0, 1})
	hist := geom.NewGrid(2, 0.125)
	for _, kind := range kinds {
		for _, budget := range budgets {
			r := rng.New(cfg.Seed + uint64(budget))
			cfgW := walk.Config{Kind: kind, OuterRadius: 2}
			switch kind {
			case walk.GridWalk:
				cfgW.Grid = geom.NewGrid(2, 0.02)
			case walk.BallWalk:
				cfgW.Delta = 0.25
			}
			start := linalg.Vector{0.25, 0.25}
			counts := map[string]int{}
			for i := 0; i < samples; i++ {
				w, err := walk.New(tri, start, r, cfgW)
				if err != nil {
					return nil, err
				}
				p := w.Sample(budget)
				counts[hist.Key(p)]++
			}
			flat := make([]int, 0, len(counts))
			for _, c := range counts {
				flat = append(flat, c)
			}
			t.Rows = append(t.Rows, []string{kind.String(), fi(budget), f(geom.TVDistanceUniform(flat))})
		}
	}
	t.Notes = append(t.Notes, "each sample restarts the walk from a fixed corner-ish point, so TV reflects pure mixing speed")
	return t, nil
}

// runA3: rounding on/off — without well-rounding, the volume estimator
// on an elongated body degrades; with it (the paper's first DFK step)
// the estimate lands within the ratio.
func runA3(cfg Config) (*Table, error) {
	aspects := []float64{5, 25, 100}
	if cfg.Quick {
		aspects = []float64{5, 100}
	}
	t := &Table{
		ID:      "A3",
		Title:   "ablation: rounding pass on elongated bodies",
		Claim:   "the DFK well-rounding step is what makes elongated bodies tractable: without it the sandwiching ratio (and walk budget) blows up with the aspect ratio",
		Columns: []string{"aspect", "ratio w/o rounding", "ratio w/ rounding", "vol est (rounded)", "exact", "ok"},
	}
	for ai, aspect := range aspects {
		rbox := dataset.RotatedBox(rng.New(cfg.Seed+uint64(ai)), []float64{aspect, 1})
		exact := 4 * aspect

		// Without isotropy rounding: only recentring/scaling
		// (RoundingIterations < 0 disables the covariance pass).
		noRound, err := core.NewConvexPolytope(rbox, rng.New(cfg.Seed+uint64(10+ai)), core.Options{
			Params:             fastOpts().Params,
			Walk:               walk.HitAndRun,
			RoundingIterations: -1,
		})
		if err != nil {
			return nil, err
		}
		withRound, err := core.NewConvexPolytope(rbox, rng.New(cfg.Seed+uint64(20+ai)), core.Options{
			Params:             fastOpts().Params,
			Walk:               walk.HitAndRun,
			RoundingIterations: 5,
		})
		if err != nil {
			return nil, err
		}
		v, err := withRound.Volume()
		if err != nil {
			return nil, err
		}
		ok := "yes"
		if !num.WithinRatio(v, exact, 0.5) {
			ok = "no"
		}
		t.Rows = append(t.Rows, []string{
			f(aspect),
			f(noRound.SandwichRatio()),
			f(withRound.SandwichRatio()),
			f(v), f(exact), ok,
		})
	}
	t.Notes = append(t.Notes,
		"the un-rounded sandwich ratio tracks the aspect ratio; isotropy rounding pulls it to O(1) so fixed walk budgets suffice")
	return t, nil
}
