package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-runs every registered experiment in
// quick mode and sanity-checks table structure. The experiment *shapes*
// (which row wins, where aborts happen) are asserted individually below.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, Config{Seed: 7, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tab.ID != id || len(tab.Rows) == 0 || len(tab.Columns) == 0 {
				t.Fatalf("%s: malformed table %+v", id, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Errorf("%s: render missing ID", id)
			}
			buf.Reset()
			tab.Markdown(&buf)
			if !strings.Contains(buf.String(), "|") {
				t.Errorf("%s: markdown missing table", id)
			}
		})
	}
}

func TestIDsOrderedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("registered experiments = %d, want 15 (E1–E12 + A1–A3)", len(ids))
	}
	if ids[0] != "E1" || ids[9] != "E10" || ids[11] != "E12" {
		t.Errorf("IDs order wrong: %v", ids)
	}
	if ids[12] != "A1" || ids[14] != "A3" {
		t.Errorf("ablations must follow the E-series: %v", ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", Config{}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestE5ShapePolyRelatedBoundary(t *testing.T) {
	tab, err := Run("E5", Config{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[len(last)-1], "abort") {
		t.Errorf("thinnest intersection must abort, got %q", last[len(last)-1])
	}
	first := tab.Rows[0]
	if first[len(first)-1] != "ok" {
		t.Errorf("fat intersection must succeed, got %q", first[len(first)-1])
	}
}

func TestE7ShapeFigure1(t *testing.T) {
	tab, err := Run("E7", Config{Seed: 13, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: shape, naive TV, naive mean, alg2 TV, alg2 mean, acc.
	row := tab.Rows[0]
	naiveTV := parseF(t, row[1])
	algoTV := parseF(t, row[3])
	if algoTV >= naiveTV {
		t.Errorf("Algorithm 2 TV (%g) must beat naive TV (%g)", algoTV, naiveTV)
	}
}

func TestE11ShapeExactMatchesEstimate(t *testing.T) {
	tab, err := Run("E11", Config{Seed: 17, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio := parseF(t, row[len(row)-1])
		if ratio > 1.6 {
			t.Errorf("d=%s: DFK/exact ratio %g too large", row[0], ratio)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
