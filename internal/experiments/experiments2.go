package experiments

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/reconstruct"
	"repro/internal/rng"
	"repro/internal/satenc"
	"repro/internal/walk"
)

func init() {
	registry["E7"] = runE7
	registry["E8"] = runE8
	registry["E9"] = runE9
	registry["E10"] = runE10
	registry["E11"] = runE11
	registry["E12"] = runE12
}

// runE7 reproduces Figure 1 quantitatively: the naive projection of a
// uniform sample is non-uniform; Algorithm 2's cylinder-rejection fixes
// it (Theorem 4.3).
func runE7(cfg Config) (*Table, error) {
	type shape struct {
		name string
		poly *polytope.Polytope
		keep []int
	}
	shapes := []shape{
		{"fig1 triangle → y", polytope.New(
			[]linalg.Vector{{-1, 0}, {0, -1}, {1, 1}}, []float64{0, 0, 1}), []int{1}},
		{"simplex3 → x", polytope.FromTuple(constraint.Simplex(3, 1)), []int{0}},
	}
	n := 2500
	if cfg.Quick {
		shapes = shapes[:1]
		n = 800
	}
	t := &Table{
		ID:      "E7",
		Title:   "Figure 1: naive projection vs Algorithm 2",
		Claim:   "projecting uniform samples is non-uniform (TV >> 0); the cylinder-volume rejection of Algorithm 2 restores near-uniformity",
		Columns: []string{"shape", "naive TV", "naive mean", "alg2 TV", "alg2 mean", "alg2 acceptance"},
	}
	for si, sh := range shapes {
		pr, err := core.NewProjection(sh.poly, sh.keep, rng.New(cfg.Seed+uint64(si)), fastOpts())
		if err != nil {
			return nil, err
		}
		g := pr.Grid()
		hist := func(sample func() (linalg.Vector, error)) (float64, float64, error) {
			counts := map[string]int{}
			var mean float64
			got := 0
			for i := 0; i < n; i++ {
				y, err := sample()
				if err != nil {
					return 0, 0, err
				}
				// Interior cells only: boundary half-cells would distort
				// both histograms equally.
				if y[0] < 0.05 || y[0] > 0.95 {
					continue
				}
				counts[g.Key(y)]++
				mean += y[0]
				got++
			}
			flat := make([]int, 0, len(counts))
			for _, c := range counts {
				flat = append(flat, c)
			}
			if got == 0 {
				return 0, 0, errors.New("no interior samples")
			}
			return geom.TVDistanceUniform(flat), mean / float64(got), nil
		}
		naiveTV, naiveMean, err := hist(pr.SampleNaive)
		if err != nil {
			return nil, err
		}
		algoTV, algoMean, err := hist(pr.Sample)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			sh.name, f(naiveTV), f(naiveMean), f(algoTV), f(algoMean), f(pr.AcceptanceRate()),
		})
	}
	t.Notes = append(t.Notes,
		"for the fig1 triangle the naive mean is ~1/3 (linear bias toward short cylinders); Algorithm 2 recovers ~1/2")
	return t, nil
}

// runE8: hull-of-samples convergence (Lemma 4.1 via Affentranger–
// Wieacker): the volume defect shrinks with N inside the predicted
// envelope shape.
func runE8(cfg Config) (*Table, error) {
	ns := []int{50, 200, 1000, 4000}
	if cfg.Quick {
		ns = []int{50, 400}
	}
	t := &Table{
		ID:      "E8",
		Title:   "convex hull of N uniform samples: volume defect vs N",
		Claim:   "the expected defect is O(ln^{d-1}(N)/N) (Lemma 4.1): it decays with N and tracks the envelope's shape",
		Columns: []string{"body", "N", "defect 1−vol(hull)/vol", "AW envelope ln^{d-1}N/N"},
	}
	// Unit square (exact hull area by shoelace).
	for _, n := range ns {
		gen, err := core.NewConvexPolytope(polytope.FromTuple(constraint.Cube(2, 0, 1)), rng.New(cfg.Seed+uint64(n)), fastOpts())
		if err != nil {
			return nil, err
		}
		h, err := reconstruct.HullFromGenerator(gen, n)
		if err != nil {
			return nil, err
		}
		defect := 1 - h.Area2D()
		envelope := math.Log(float64(n)) / float64(n)
		t.Rows = append(t.Rows, []string{"square", fi(n), f(defect), f(envelope)})
	}
	// Triangle (r = 3 vertices).
	for _, n := range ns {
		tri := polytope.New([]linalg.Vector{{-1, 0}, {0, -1}, {1, 1}}, []float64{0, 0, 1})
		gen, err := core.NewConvexPolytope(tri, rng.New(cfg.Seed+uint64(1000+n)), fastOpts())
		if err != nil {
			return nil, err
		}
		h, err := reconstruct.HullFromGenerator(gen, n)
		if err != nil {
			return nil, err
		}
		defect := 1 - h.Area2D()/0.5
		envelope := math.Log(float64(n)) / float64(n)
		t.Rows = append(t.Rows, []string{"triangle", fi(n), f(defect), f(envelope)})
	}
	return t, nil
}

// runE9: sampling reconstruction of a projection vs Fourier–Motzkin
// elimination (Proposition 4.3): FM's constraint count and time explode
// with the number of eliminated variables while the sampling
// reconstruction stays polynomial at fixed sample budget.
func runE9(cfg Config) (*Table, error) {
	ks := []int{1, 2, 3, 4}
	cuts := 10
	hullN := 300
	if cfg.Quick {
		ks = []int{1, 2, 3}
		cuts = 8
		hullN = 120
	}
	t := &Table{
		ID:      "E9",
		Title:   "projection: Fourier–Motzkin vs sampling reconstruction",
		Claim:   "raw FM grows doubly exponentially in eliminated variables k; sampling reconstruction time is flat in k at fixed budget, and the hull agrees with the symbolic result",
		Columns: []string{"k eliminated", "FM atoms", "FM time", "sample time", "hull agree %"},
	}
	e := 2 // keep 2 output coordinates
	for ki, k := range ks {
		r := rng.New(cfg.Seed + uint64(ki))
		poly := dataset.HighDimPipeline(r, e, k, cuts)
		vars := make([]string, e+k)
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		rel := constraint.MustRelation("P", vars, poly.Tuple())
		drop := make([]int, k)
		for i := range drop {
			drop[i] = e + i
		}
		// Raw FM (no pruning) exposes the doubly-exponential growth but
		// becomes computationally infeasible beyond k = 3 (the k = 3
		// output already has ~10^4 atoms; one more round pairs them
		// quadratically). Larger k uses the pruned variant — itself the
		// practical FM — whose time still grows steeply.
		fmStart := time.Now()
		var rawAtoms int
		var projected *constraint.Relation
		mode := "raw"
		if k <= 3 {
			raw := constraint.EliminateAll(rel, drop, constraint.EliminateOptions{SkipPruning: true})
			for _, tp := range raw.Tuples {
				rawAtoms += len(tp.Atoms)
			}
			projected = raw
		} else {
			mode = "pruned"
			pruned := constraint.EliminateAll(rel, drop, constraint.EliminateOptions{})
			for _, tp := range pruned.Tuples {
				rawAtoms += len(tp.Atoms)
			}
			projected = pruned
		}
		fmTime := time.Since(fmStart)

		keep := make([]int, e)
		for i := range keep {
			keep[i] = i
		}
		sampleStart := time.Now()
		hull, err := reconstruct.ProjectionEstimate(poly, keep, hullN, r.Split(), fastOpts())
		if err != nil {
			return nil, err
		}
		sampleTime := time.Since(sampleStart)

		// Agreement: membership of the hull vs the symbolic projection on
		// random probes.
		agree, probes := 0, 600
		if cfg.Quick {
			probes = 200
		}
		for i := 0; i < probes; i++ {
			p := linalg.Vector{r.Uniform(-1.2, 1.2), r.Uniform(-1.2, 1.2)}
			if hull.Contains(p) == projected.Contains(p) {
				agree++
			}
		}
		t.Rows = append(t.Rows, []string{
			fi(k), fmt.Sprintf("%d (%s)", rawAtoms, mode), fd(fmTime), fd(sampleTime),
			fmt.Sprintf("%.1f", 100*float64(agree)/float64(probes)),
		})
	}
	t.Notes = append(t.Notes,
		"FM atoms follow the m^(2^k)-type growth before pruning; disagreements concentrate in the O(ε) boundary band of the hull")
	return t, nil
}

// runE10: the geometric SAT encoding (§4.1.3): intersection generation
// succeeds on under-constrained instances and aborts as the solution
// density collapses — the operational face of "poly-relatedness is
// necessary unless P = NP".
func runE10(cfg Config) (*Table, error) {
	type row struct {
		n, m int
	}
	rows := []row{{4, 4}, {4, 8}, {5, 10}, {5, 21}, {6, 12}, {6, 25}}
	if cfg.Quick {
		rows = []row{{4, 4}, {4, 8}, {5, 21}}
	}
	t := &Table{
		ID:      "E10",
		Title:   "geometric 3-SAT: intersection sampling vs solution density",
		Claim:   "the clause-intersection generator finds witnesses while solutions are dense and aborts when the satisfying volume is an exponentially small fraction",
		Columns: []string{"vars", "clauses", "density", "#solutions", "sat frac of cube", "outcome"},
	}
	for i, rc := range rows {
		r := rng.New(cfg.Seed + uint64(i*7))
		ins := satenc.RandomKSAT(r, rc.n, rc.m, 3)
		count := ins.CountSatisfying()
		frac := ins.SatisfyingVolume()
		obs, err := ins.Observables(r.Split(), fastOpts())
		if err != nil {
			return nil, err
		}
		opts := fastOpts()
		opts.AcceptanceFloor = 5e-3
		opts.MaxRounds = 4000
		outcome := "witness found"
		inter, err := core.NewIntersection(obs, r.Split(), opts)
		if err != nil {
			outcome = shortErr(err)
		} else if x, err := inter.Sample(); err != nil {
			outcome = shortErr(err)
		} else if !ins.SatisfiedByPartial(satenc.Decode(x)) {
			// A point of the clause intersection always decodes to a
			// clause-wise witness; this branch firing would be a bug.
			outcome = "non-witness sample (BUG)"
		}
		t.Rows = append(t.Rows, []string{
			fi(rc.n), fi(rc.m), fmt.Sprintf("%.1f", float64(rc.m)/float64(rc.n)),
			fi(count), f(frac), outcome,
		})
	}
	t.Notes = append(t.Notes,
		"as density grows the satisfying fraction decays toward 4^-n and the generator must abort — deciding these instances by sampling would solve SAT")
	return t, nil
}

// runE11: fixed dimension (Section 3): exact evaluation is fast at small
// d and explodes with d, while the randomized estimator's cost stays
// tame — the crossover the paper's Section 3/4 split predicts.
func runE11(cfg Config) (*Table, error) {
	dims := []int{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		dims = []int{2, 4, 6}
	}
	t := &Table{
		ID:      "E11",
		Title:   "fixed-dimension exact methods vs randomized estimator",
		Claim:   "exact volume (Lemma 3.1) and grid enumeration (Lemma 3.2) are polynomial only for fixed d; the DFK estimator's cost grows polynomially and overtakes them",
		Columns: []string{"d", "exact vol", "exact time", "grid cells", "grid time", "DFK est", "DFK time", "ratio"},
	}
	for _, d := range dims {
		vars := make([]string, d)
		for i := range vars {
			vars[i] = fmt.Sprintf("x%d", i)
		}
		rel := constraint.MustRelation("R", vars,
			constraint.Cube(d, 0, 2),
			constraint.Cube(d, 1, 3),
		)
		exactStart := time.Now()
		exact, err := core.ExactVolume(rel)
		if err != nil {
			return nil, err
		}
		exactTime := time.Since(exactStart)

		gridCells := "-"
		gridTime := "-"
		gridStart := time.Now()
		ge, err := core.NewGridEnum(rel, 0.05, 1<<21, rng.New(cfg.Seed+uint64(d)))
		if err == nil {
			gridCells = fi(ge.CellCount())
			gridTime = fd(time.Since(gridStart))
		} else if errors.Is(err, geom.ErrTooManyCells) {
			gridCells = "budget exceeded"
			gridTime = "-"
		} else {
			return nil, err
		}

		dfkStart := time.Now()
		obs, err := core.NewRelationObservable(rel, rng.New(cfg.Seed+uint64(40+d)), fastOpts())
		if err != nil {
			return nil, err
		}
		est, err := obs.Volume()
		if err != nil {
			return nil, err
		}
		dfkTime := time.Since(dfkStart)
		ratio := est / exact
		if ratio < 1 {
			ratio = 1 / ratio
		}
		t.Rows = append(t.Rows, []string{
			fi(d), f(exact), fd(exactTime), gridCells, gridTime, f(est), fd(dfkTime), f(ratio),
		})
	}
	t.Notes = append(t.Notes,
		"exact union volume is 2·2^d − 1^d by inclusion-exclusion; grid enumeration at resolution 0.05 exceeds its 2M-cell budget by d=5–6")
	return t, nil
}

// runE12: polynomial constraints (§5): the generator and estimator need
// only a membership oracle, so convex semi-algebraic bodies (balls,
// ellipsoids, p-norm balls) run through the identical code path.
func runE12(cfg Config) (*Table, error) {
	type tc struct {
		name  string
		body  walk.Body
		c     linalg.Vector
		inner float64
		outer float64
		exact float64
	}
	mkBall := func(d int, rad float64) tc {
		return tc{
			name:  fmt.Sprintf("ball d=%d", d),
			body:  oracleBody{walk.BallBody{Center: make(linalg.Vector, d), Radius: rad}},
			c:     make(linalg.Vector, d),
			inner: rad, outer: rad,
			exact: num.BallVolume(d, rad),
		}
	}
	ell := ellipsoid{axes: []float64{2, 1, 0.5}}
	pball := pNormBall{d: 3, p: 4, rad: 1}
	cases := []tc{
		mkBall(2, 1), mkBall(4, 1), mkBall(6, 1),
		{"ellipsoid 2x1x0.5", oracleBody{ell}, make(linalg.Vector, 3), 0.5, 2, num.EllipsoidVolume(ell.axes)},
		{"4-norm ball d=3", oracleBody{pball}, make(linalg.Vector, 3), 1, 1 * math.Pow(3, 0.25), pNormBallVolume(3, 4, 1)},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	t := &Table{
		ID:      "E12",
		Title:   "polynomial-constraint convex bodies via membership oracles",
		Claim:   "§5: the DFK machinery needs only membership — semi-algebraic convex bodies sample and estimate through the same code path",
		Columns: []string{"body", "exact vol", "estimate", "ratio", "within 1.45x"},
	}
	for i, c := range cases {
		conv, err := core.NewConvex(c.body, c.c, c.inner, c.outer, rng.New(cfg.Seed+uint64(i)), fastOpts())
		if err != nil {
			return nil, err
		}
		v, err := conv.Volume()
		if err != nil {
			return nil, err
		}
		ratio := v / c.exact
		if ratio < 1 {
			ratio = 1 / ratio
		}
		pass := "yes"
		if ratio > 1.45 {
			pass = "no"
		}
		t.Rows = append(t.Rows, []string{c.name, f(c.exact), f(v), f(ratio), pass})
	}
	t.Notes = append(t.Notes, "the oracle wrapper strips chord support, forcing the bisection path a true black-box oracle would use")
	return t, nil
}

// oracleBody strips every capability except membership.
type oracleBody struct{ b walk.Body }

func (o oracleBody) Dim() int                      { return o.b.Dim() }
func (o oracleBody) Contains(x linalg.Vector) bool { return o.b.Contains(x) }

// ellipsoid is the convex body Σ (x_i/a_i)^2 <= 1 — a polynomial
// constraint set in the sense of §5.
type ellipsoid struct{ axes []float64 }

func (e ellipsoid) Dim() int { return len(e.axes) }
func (e ellipsoid) Contains(x linalg.Vector) bool {
	var s float64
	for i, v := range x {
		t := v / e.axes[i]
		s += t * t
	}
	return s <= 1
}

// pNormBall is the convex body ||x||_p <= rad for even p — another
// polynomial-constraint convex set.
type pNormBall struct {
	d   int
	p   float64
	rad float64
}

func (b pNormBall) Dim() int { return b.d }
func (b pNormBall) Contains(x linalg.Vector) bool {
	var s float64
	for _, v := range x {
		s += math.Pow(math.Abs(v), b.p)
	}
	return math.Pow(s, 1/b.p) <= b.rad
}

// pNormBallVolume is the closed form 2^d Γ(1+1/p)^d / Γ(1+d/p) · r^d.
func pNormBallVolume(d int, p, r float64) float64 {
	lg1, _ := math.Lgamma(1 + 1/p)
	lg2, _ := math.Lgamma(1 + float64(d)/p)
	return math.Exp(float64(d)*(math.Log(2)+lg1) - lg2 + float64(d)*math.Log(r))
}
