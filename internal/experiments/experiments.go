// Package experiments implements the reproduction experiment suite
// E1–E12 described in DESIGN.md §5. The paper is a theory paper with no
// empirical tables, so each experiment turns one quantitative claim
// (theorem, complexity bound, or Figure 1's phenomenon) into a measured
// table whose *shape* — who wins, by what factor, where crossovers fall —
// is the reproduction target. EXPERIMENTS.md records the measured rows.
//
// The same code drives `go test -bench` (quick configurations) and the
// cmd/cdbbench binary (full tables).
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes runs reproducible.
	Seed uint64
	// Quick shrinks workloads for use inside `go test -bench`.
	Quick bool
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*Note:* %s\n\n", n)
	}
}

// Runner is an experiment entry point.
type Runner func(cfg Config) (*Table, error)

// registry maps experiment IDs to runners, populated across the package
// files.
var registry = map[string]Runner{}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E1 < ... < E12 numerically, then ablations A1 < A2 < A3.
		gi, ni := idClass(ids[i])
		gj, nj := idClass(ids[j])
		if gi != gj {
			return gi < gj
		}
		return ni < nj
	})
	return ids
}

func idClass(id string) (group, n int) {
	if _, err := fmt.Sscanf(id, "E%d", &n); err == nil {
		return 0, n
	}
	if _, err := fmt.Sscanf(id, "A%d", &n); err == nil {
		return 1, n
	}
	return 2, 0
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

func fastOpts() core.Options {
	return core.Options{
		Params: core.Params{Gamma: 0.25, Eps: 0.25, Delta: 0.1},
		Walk:   walk.HitAndRun,
	}
}

func f(v float64) string { return fmt.Sprintf("%.4g", v) }
func fi(v int) string    { return fmt.Sprintf("%d", v) }
func fd(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func init() {
	registry["E1"] = runE1
	registry["E2"] = runE2
	registry["E3"] = runE3
	registry["E4"] = runE4
	registry["E5"] = runE5
	registry["E6"] = runE6
}

// runE1: rejection sampling from the cube needs exponentially many
// trials to hit the inscribed ball, while the walk generator's cost
// grows polynomially (§1/§2's motivating remark).
func runE1(cfg Config) (*Table, error) {
	dims := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 12}
	if cfg.Quick {
		dims = []int{2, 4, 6, 8}
	}
	t := &Table{
		ID:      "E1",
		Title:   "naive rejection vs walk sampling of the inscribed ball",
		Claim:   "an exponential number of cube-rejection trials is needed per ball sample; the walk's cost is polynomial in d",
		Columns: []string{"d", "ball/cube ratio", "expected trials", "measured trials", "walk steps/sample", "walk ok"},
	}
	r := rng.New(cfg.Seed)
	for _, d := range dims {
		ratio := num.BallVolume(d, 1) / num.CubeVolume(d, 2)
		expected := 1 / ratio
		// Measured rejection trials for one hit (capped).
		capTrials := 2_000_000
		if cfg.Quick {
			capTrials = 200_000
		}
		trials := 0
		x := make(linalg.Vector, d)
		for trials < capTrials {
			trials++
			var n2 float64
			for j := range x {
				x[j] = r.Uniform(-1, 1)
				n2 += x[j] * x[j]
			}
			if n2 <= 1 {
				break
			}
		}
		measured := fi(trials)
		if trials == capTrials {
			measured = fmt.Sprintf(">%d", capTrials)
		}
		// Walk cost: hit-and-run steps per sample on the ball oracle.
		ball := walk.BallBody{Center: make(linalg.Vector, d), Radius: 1}
		steps := walk.DefaultHitAndRunSteps(d, 1)
		w, err := walk.New(ball, make(linalg.Vector, d), r.Split(), walk.Config{Kind: walk.HitAndRun})
		ok := "yes"
		if err != nil {
			ok = "no"
		} else {
			w.Sample(steps)
		}
		t.Rows = append(t.Rows, []string{fi(d), f(ratio), f(expected), measured, fi(steps), ok})
	}
	t.Notes = append(t.Notes,
		"expected trials = cube/ball volume ratio: 1.3 at d=2, ~3×10³ at d=12, roughly ×4 per added dimension (super-exponential), while walk steps grow as O(d²)")
	return t, nil
}

// runE2: the DFK grid-walk generator's distribution approaches uniform
// as the step budget grows (Definition 2.2(1) / the DFK theorem).
func runE2(cfg Config) (*Table, error) {
	type body struct {
		name string
		tup  constraint.Tuple
	}
	bodies := []body{
		{"square", constraint.Cube(2, 0, 1)},
		{"simplex2", constraint.Simplex(2, 1)},
		{"cube3", constraint.Cube(3, 0, 1)},
	}
	stepSweep := []int{50, 200, 800, 3200}
	samples := 4000
	if cfg.Quick {
		bodies = bodies[:2]
		stepSweep = []int{50, 400}
		samples = 1200
	}
	t := &Table{
		ID:      "E2",
		Title:   "grid-walk distribution quality vs step budget",
		Claim:   "the lazy grid walk is almost uniform on well-rounded bodies: TV distance sits at the sampling-noise floor at every budget (ablation A2 isolates the per-step mixing decay from a cold start)",
		Columns: []string{"body", "steps", "cells", "TV distance"},
	}
	for bi, b := range bodies {
		for _, steps := range stepSweep {
			opts := core.Options{
				Params:    core.Params{Gamma: 0.45, Eps: 0.3, Delta: 0.1},
				Walk:      walk.GridWalk,
				WalkSteps: steps,
			}
			gen, err := core.NewConvexPolytope(polytope.FromTuple(b.tup), rng.New(cfg.Seed+uint64(bi)), opts)
			if err != nil {
				return nil, err
			}
			g := gen.Grid()
			counts := map[string]int{}
			for i := 0; i < samples; i++ {
				y, err := gen.SampleRounded()
				if err != nil {
					return nil, err
				}
				counts[g.Key(y)]++
			}
			flat := make([]int, 0, len(counts))
			for _, c := range counts {
				flat = append(flat, c)
			}
			tv := geom.TVDistanceUniform(flat)
			t.Rows = append(t.Rows, []string{b.name, fi(steps), fi(len(flat)), f(tv)})
		}
	}
	t.Notes = append(t.Notes, "TV is computed over occupied grid cells; sampling noise floors it around sqrt(cells/samples)")
	return t, nil
}

// runE3: the volume estimator achieves its relative ratio on bodies with
// closed-form volumes (the DFK estimator + §5's membership-only oracle).
func runE3(cfg Config) (*Table, error) {
	type tc struct {
		name  string
		build func(r *rng.RNG) (core.Observable, error)
		exact float64
	}
	mk := func(tup constraint.Tuple) func(r *rng.RNG) (core.Observable, error) {
		return func(r *rng.RNG) (core.Observable, error) {
			return core.NewConvexPolytope(polytope.FromTuple(tup), r, fastOpts())
		}
	}
	cases := []tc{
		{"cube d=2", mk(constraint.Cube(2, -1, 1)), num.CubeVolume(2, 2)},
		{"cube d=4", mk(constraint.Cube(4, -1, 1)), num.CubeVolume(4, 2)},
		{"cube d=6", mk(constraint.Cube(6, -1, 1)), num.CubeVolume(6, 2)},
		{"simplex d=3", mk(constraint.Simplex(3, 1)), num.SimplexVolume(3, 1)},
		{"cross d=3", mk(constraint.CrossPolytope(3, 1)), num.CrossPolytopeVolume(3, 1)},
		{"box 1x50", mk(constraint.Box(linalg.Vector{0, 0}, linalg.Vector{50, 1})), 50},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	reps := 5
	if cfg.Quick {
		reps = 2
	}
	t := &Table{
		ID:      "E3",
		Title:   "relative volume estimation on closed-form bodies",
		Claim:   "the telescoping estimator approximates the volume with ratio 1+ε with probability 1-δ (ε=0.25 target; ratios reported over repetitions)",
		Columns: []string{"body", "exact", "median estimate", "worst ratio", "within 1.35x"},
	}
	for ci, c := range cases {
		ests := make([]float64, 0, reps)
		worst := 1.0
		for rep := 0; rep < reps; rep++ {
			obs, err := c.build(rng.New(cfg.Seed + uint64(100*ci+rep)))
			if err != nil {
				return nil, err
			}
			v, err := obs.Volume()
			if err != nil {
				return nil, err
			}
			ests = append(ests, v)
			ratio := v / c.exact
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > worst {
				worst = ratio
			}
		}
		pass := "yes"
		if worst > 1.35 {
			pass = "no"
		}
		t.Rows = append(t.Rows, []string{c.name, f(c.exact), f(num.Median(ests)), f(worst), pass})
	}
	return t, nil
}

// runE4: union generator and estimator (Theorem 4.1/4.2, Corollary 4.2):
// no double counting of overlaps, per-round acceptance >= 1/m, and
// m-way sampling cost grows ~linearly in m.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "union generator: overlap correctness and m-way scaling",
		Claim:   "union volume is exact under Karp-Luby acceptance (no overlap double-count); per-round acceptance >= 1/m; cost per sample grows ~linearly with m",
		Columns: []string{"workload", "exact vol", "estimated vol", "acceptance", "ns/sample"},
	}
	// Part 1: overlapping pair [0,2]^2 ∪ [1,3]^2 (exact 7).
	r := rng.New(cfg.Seed)
	mkConvex := func(tup constraint.Tuple, seed uint64) (core.Observable, error) {
		return core.NewConvexPolytope(polytope.FromTuple(tup), rng.New(seed), fastOpts())
	}
	a, err := mkConvex(constraint.Cube(2, 0, 2), cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	b, err := mkConvex(constraint.Cube(2, 1, 3), cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	u, err := core.NewUnion([]core.Observable{a, b}, r.Split(), fastOpts())
	if err != nil {
		return nil, err
	}
	v, err := u.Volume()
	if err != nil {
		return nil, err
	}
	nSamp := 800
	if cfg.Quick {
		nSamp = 200
	}
	start := time.Now()
	for i := 0; i < nSamp; i++ {
		if _, err := u.Sample(); err != nil {
			return nil, err
		}
	}
	perSample := time.Since(start).Nanoseconds() / int64(nSamp)
	t.Rows = append(t.Rows, []string{"overlap pair", "7", f(v), f(u.AcceptanceRate()), fi(int(perSample))})

	// Part 2: m-way disjoint squares.
	ms := []int{2, 4, 8, 16}
	if cfg.Quick {
		ms = []int{2, 8}
	}
	for _, m := range ms {
		members := make([]core.Observable, m)
		for i := 0; i < m; i++ {
			lo := float64(3 * i)
			obs, err := mkConvex(constraint.Box(linalg.Vector{lo, 0}, linalg.Vector{lo + 1, 1}), cfg.Seed+uint64(10+i))
			if err != nil {
				return nil, err
			}
			members[i] = obs
		}
		um, err := core.NewUnion(members, r.Split(), fastOpts())
		if err != nil {
			return nil, err
		}
		vm, err := um.Volume()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < nSamp; i++ {
			if _, err := um.Sample(); err != nil {
				return nil, err
			}
		}
		per := time.Since(start).Nanoseconds() / int64(nSamp)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("disjoint m=%d", m), fi(m), f(vm), f(um.AcceptanceRate()), fi(int(per)),
		})
	}
	t.Notes = append(t.Notes, "disjoint m-way acceptance stays 1.0 (each point has a unique canonical member); ns/sample includes member generator work")
	return t, nil
}

// runE5: intersection is observable iff poly-related (Proposition 4.1):
// acceptance tracks the overlap ratio and the guard aborts below the
// floor.
func runE5(cfg Config) (*Table, error) {
	overlaps := []float64{0.5, 0.1, 0.02, 0.004, 1e-6}
	if cfg.Quick {
		overlaps = []float64{0.5, 0.02, 1e-6}
	}
	t := &Table{
		ID:      "E5",
		Title:   "intersection observability vs overlap ratio",
		Claim:   "rejection sampling from the smaller operand succeeds when the intersection is poly-related and aborts (ErrNotPolyRelated) when it is exponentially small",
		Columns: []string{"overlap fraction", "est. volume", "exact volume", "acceptance", "outcome"},
	}
	for i, frac := range overlaps {
		// [0,1]x[0,1] ∩ [1-frac,2-frac]x[0,1]: overlap volume = frac.
		opts := fastOpts()
		opts.AcceptanceFloor = 1e-3
		opts.MaxRounds = 6000
		a, err := core.NewConvexPolytope(polytope.FromTuple(constraint.Cube(2, 0, 1)), rng.New(cfg.Seed+uint64(i*2)), opts)
		if err != nil {
			return nil, err
		}
		bTup := constraint.Box(linalg.Vector{1 - frac, 0}, linalg.Vector{2 - frac, 1})
		b, err := core.NewConvexPolytope(polytope.FromTuple(bTup), rng.New(cfg.Seed+uint64(i*2+1)), opts)
		if err != nil {
			return nil, err
		}
		in, err := core.NewIntersection([]core.Observable{a, b}, rng.New(cfg.Seed+uint64(50+i)), opts)
		if err != nil {
			return nil, err
		}
		outcome := "ok"
		vol := math.NaN()
		if v, err := in.Volume(); err != nil {
			outcome = shortErr(err)
		} else {
			vol = v
		}
		volStr := "-"
		if !math.IsNaN(vol) {
			volStr = f(vol)
		}
		t.Rows = append(t.Rows, []string{f(frac), volStr, f(frac), f(in.AcceptanceRate()), outcome})
	}
	t.Notes = append(t.Notes, "the 1e-6 row must abort: this is the SAT-hardness boundary of §4.1.3 made operational")
	return t, nil
}

// runE6: difference under the same poly-relatedness guard
// (Proposition 4.2).
func runE6(cfg Config) (*Table, error) {
	shells := []float64{0.9, 0.5, 0.1, 0.01, 1e-6}
	if cfg.Quick {
		shells = []float64{0.5, 0.01, 1e-6}
	}
	t := &Table{
		ID:      "E6",
		Title:   "difference observability vs shell fraction",
		Claim:   "S1 − S2 is observable when its volume is poly-related to S1's; exponentially thin shells abort",
		Columns: []string{"shell fraction", "est. volume", "exact volume", "acceptance", "outcome"},
	}
	for i, frac := range shells {
		// S1 = [0,1]^2; S2 covers all but an x-slab of width frac.
		opts := fastOpts()
		opts.AcceptanceFloor = 1e-3
		opts.MaxRounds = 6000
		s1, err := core.NewConvexPolytope(polytope.FromTuple(constraint.Cube(2, 0, 1)), rng.New(cfg.Seed+uint64(i)), opts)
		if err != nil {
			return nil, err
		}
		s2 := polytope.FromTuple(constraint.Box(linalg.Vector{-1, -1}, linalg.Vector{1 - frac, 2}))
		df, err := core.NewDifference(s1, s2, rng.New(cfg.Seed+uint64(80+i)), opts)
		if err != nil {
			return nil, err
		}
		outcome := "ok"
		volStr := "-"
		if v, err := df.Volume(); err != nil {
			outcome = shortErr(err)
		} else {
			volStr = f(v)
		}
		t.Rows = append(t.Rows, []string{f(frac), volStr, f(frac), f(df.AcceptanceRate()), outcome})
	}
	return t, nil
}

func shortErr(err error) string {
	s := err.Error()
	switch {
	case strings.Contains(s, "not poly-related"):
		return "abort: not poly-related"
	case strings.Contains(s, "generator failed"):
		return "abort: generator failed"
	}
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}
