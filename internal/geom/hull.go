package geom

import (
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/rng"
)

// Hull2D returns the convex hull of 2-D points in counter-clockwise
// order (Andrew's monotone chain). Collinear boundary points are dropped.
func Hull2D(pts []linalg.Vector) []linalg.Vector {
	if len(pts) <= 2 {
		out := make([]linalg.Vector, len(pts))
		for i, p := range pts {
			out[i] = p.Clone()
		}
		return out
	}
	sorted := make([]linalg.Vector, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	cross := func(o, a, b linalg.Vector) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var lower []linalg.Vector
	for _, p := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	var upper []linalg.Vector
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	out := make([]linalg.Vector, len(hull))
	for i, p := range hull {
		out[i] = p.Clone()
	}
	return out
}

// PolygonArea returns the area of a simple polygon given by vertices in
// order (shoelace formula).
func PolygonArea(vs []linalg.Vector) float64 {
	n := len(vs)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		s += vs[i][0]*vs[j][1] - vs[j][0]*vs[i][1]
	}
	return math.Abs(s) / 2
}

// Hull is the convex hull of a point set in arbitrary dimension,
// represented by its points with membership decided by linear
// programming. This is the representation the paper's reconstruction
// results need: explicit facet enumeration is exponential in d
// (the O(N^{d/2}) remark in §4.3.1) while LP membership is polynomial.
type Hull struct {
	Dim    int
	Points []linalg.Vector
}

// NewHull builds a hull over the given points (at least one).
func NewHull(pts []linalg.Vector) *Hull {
	h := &Hull{Points: pts}
	if len(pts) > 0 {
		h.Dim = len(pts[0])
	}
	return h
}

// Contains reports whether x lies in the convex hull (one LP).
func (h *Hull) Contains(x linalg.Vector) bool {
	return lp.InConvexHull(x, h.Points)
}

// Vertices returns the extreme points of the hull: points not contained
// in the hull of the others (one LP per point). The count r of vertices
// is the parameter of Lemma 4.1.
func (h *Hull) Vertices() []linalg.Vector {
	var out []linalg.Vector
	for i, p := range h.Points {
		others := make([]linalg.Vector, 0, len(h.Points)-1)
		others = append(others, h.Points[:i]...)
		others = append(others, h.Points[i+1:]...)
		if !lp.InConvexHull(p, others) {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Reduce returns a hull over only the extreme points, preserving the set.
func (h *Hull) Reduce() *Hull { return NewHull(h.Vertices()) }

// Centroid returns the mean of the hull's points.
func (h *Hull) Centroid() linalg.Vector {
	c := make(linalg.Vector, h.Dim)
	for _, p := range h.Points {
		c.AddScaled(1, p)
	}
	if len(h.Points) > 0 {
		c = c.Scale(1 / float64(len(h.Points)))
	}
	return c
}

// BoundingBox returns the coordinate-wise bounding box of the points.
func (h *Hull) BoundingBox() (lo, hi linalg.Vector) {
	if len(h.Points) == 0 {
		return nil, nil
	}
	lo = h.Points[0].Clone()
	hi = h.Points[0].Clone()
	for _, p := range h.Points[1:] {
		for j, v := range p {
			lo[j] = math.Min(lo[j], v)
			hi[j] = math.Max(hi[j], v)
		}
	}
	return lo, hi
}

// VolumeMC estimates the hull volume by Monte Carlo over its bounding
// box with n samples. The relative error is governed by the usual
// binomial bound; it is ground truth machinery for tests and the E8
// experiment at low dimension, not a paper algorithm (the paper estimates
// hull volumes with the DFK estimator, which the sampler package does).
func (h *Hull) VolumeMC(n int, r *rng.RNG) float64 {
	lo, hi := h.BoundingBox()
	if lo == nil {
		return 0
	}
	boxVol := 1.0
	for j := range lo {
		boxVol *= hi[j] - lo[j]
	}
	if boxVol == 0 {
		return 0
	}
	hits := 0
	x := make(linalg.Vector, h.Dim)
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = r.Uniform(lo[j], hi[j])
		}
		if h.Contains(x) {
			hits++
		}
	}
	return boxVol * float64(hits) / float64(n)
}

// Area2D returns the exact area of a 2-D hull.
func (h *Hull) Area2D() float64 {
	if h.Dim != 2 {
		return math.NaN()
	}
	return PolygonArea(Hull2D(h.Points))
}

// SymmetricDifferenceMC estimates vol(A Δ B) for two membership oracles
// over a common sampling box by Monte Carlo; used to validate the paper's
// (ε, δ)-set-estimators (Definition 4.1).
func SymmetricDifferenceMC(a, b func(linalg.Vector) bool, lo, hi linalg.Vector, n int, r *rng.RNG) float64 {
	boxVol := 1.0
	for j := range lo {
		boxVol *= hi[j] - lo[j]
	}
	diff := 0
	x := make(linalg.Vector, len(lo))
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = r.Uniform(lo[j], hi[j])
		}
		if a(x) != b(x) {
			diff++
		}
	}
	return boxVol * float64(diff) / float64(n)
}

// AffentrangerWieackerRatio returns the expected relative volume defect
// of the hull of n uniform points in a d-polytope with r vertices:
// r^d / d^{d-2} · ln^{d-1}(n) / n (the bound the paper quotes from [1]).
func AffentrangerWieackerRatio(d, r, n int) float64 {
	if n < 3 {
		return 1
	}
	ln := math.Log(float64(n))
	return math.Pow(float64(r), float64(d)) / math.Pow(float64(d), float64(d-2)) *
		math.Pow(ln, float64(d-1)) / float64(n)
}

// SampleCountForHull returns Lemma 4.1's sample budget
// N = O(4 r² d² / (ε⁴ d^{2d-2}) · ln(1/δ)) — the number of uniform
// samples whose hull ε-approximates a convex polytope with r vertices
// with failure probability δ. The constant is taken literally from the
// lemma statement.
func SampleCountForHull(d, r int, eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return 0
	}
	n := 4 * float64(r*r) * float64(d*d) /
		(math.Pow(eps, 4) * math.Pow(float64(d), float64(2*d-2))) *
		math.Log(1/delta)
	if n < 16 {
		n = 16
	}
	if n > 1e7 {
		n = 1e7
	}
	return int(math.Ceil(n))
}

// ChernoffSampleCount returns the number of Bernoulli samples needed to
// estimate a proportion within additive error a with confidence 1-δ:
// n >= ln(2/δ) / (2 a²) (Hoeffding).
func ChernoffSampleCount(a, delta float64) int {
	if a <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * a * a)))
}

// TVDistanceUniform returns the total-variation distance between the
// empirical distribution given by counts and the uniform distribution
// over the same support.
func TVDistanceUniform(counts []int) float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(counts) == 0 {
		return 0
	}
	u := 1 / float64(len(counts))
	var tv float64
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(n) - u)
	}
	return tv / 2
}

// MaxRatioToUniform returns max over cells of the ratio between the
// empirical frequency and the uniform frequency (and the inverse ratio),
// the quantity bounded by (1+ε) in Definition 2.2(1). Cells with zero
// observed mass give an infinite inverse ratio only when n is large
// enough that they should have been hit; callers smooth as needed.
func MaxRatioToUniform(counts []int) float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(counts) == 0 {
		return math.Inf(1)
	}
	u := 1 / float64(len(counts))
	worst := 1.0
	for _, c := range counts {
		f := float64(c) / float64(n)
		if f == 0 {
			return math.Inf(1)
		}
		r := f / u
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

// Shuffle returns a shuffled copy of points (Fisher-Yates via rng).
func Shuffle(pts []linalg.Vector, r *rng.RNG) []linalg.Vector {
	out := make([]linalg.Vector, len(pts))
	copy(out, pts)
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// DedupPoints removes near-duplicate points within tol.
func DedupPoints(pts []linalg.Vector, tol float64) []linalg.Vector {
	var out []linalg.Vector
	for _, p := range pts {
		dup := false
		for _, q := range out {
			if p.Equal(q, tol) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
