package geom

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
)

func TestGridSnapAndIndex(t *testing.T) {
	g := NewGrid(2, 0.25)
	got := g.Snap(linalg.Vector{0.3, -0.6})
	if !got.Equal((linalg.Vector{0.25, -0.5}), 1e-12) {
		t.Errorf("Snap = %v", got)
	}
	idx := g.Index(linalg.Vector{0.3, -0.6})
	if idx[0] != 1 || idx[1] != -2 {
		t.Errorf("Index = %v", idx)
	}
	back := g.Point(idx)
	if !back.Equal((linalg.Vector{0.25, -0.5}), 1e-12) {
		t.Errorf("Point = %v", back)
	}
}

func TestGridKeyDistinguishesCells(t *testing.T) {
	g := NewGrid(2, 0.5)
	a := g.Key(linalg.Vector{0.1, 0.1})
	b := g.Key(linalg.Vector{0.6, 0.1})
	c := g.Key(linalg.Vector{0.1, 0.1})
	if a == b {
		t.Error("different cells share a key")
	}
	if a != c {
		t.Error("same cell has different keys")
	}
	// Negative coordinates must not collide with positive ones.
	if g.Key(linalg.Vector{-0.6, 0}) == g.Key(linalg.Vector{0.6, 0}) {
		t.Error("negative/positive cells collide")
	}
}

func TestGridNeighbor(t *testing.T) {
	g := NewGrid(3, 0.5)
	x := g.Point([]int{0, 0, 0})
	n := g.Neighbor(x, 1, +1)
	if !n.Equal((linalg.Vector{0, 0.5, 0}), 1e-12) {
		t.Errorf("Neighbor = %v", n)
	}
	if !g.Neighbor(x, 0, -1).Equal((linalg.Vector{-0.5, 0, 0}), 1e-12) {
		t.Error("negative direction neighbor wrong")
	}
}

func TestGridPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(_, 0) must panic")
		}
	}()
	NewGrid(2, 0)
}

func TestStepForGamma(t *testing.T) {
	s := StepForGamma(0.1, 4, 1)
	if s <= 0 || s > 0.1 {
		t.Errorf("StepForGamma = %g", s)
	}
	// Smaller gamma, finer grid.
	if StepForGamma(0.01, 4, 1) >= s {
		t.Error("step must shrink with gamma")
	}
	// Higher dimension, finer grid.
	if StepForGamma(0.1, 9, 1) >= s {
		t.Error("step must shrink with dimension")
	}
	if StepForGamma(0, 4, 0) <= 0 {
		t.Error("degenerate parameters must still give a positive step")
	}
}

func TestEnumerateCountsMatchVolume(t *testing.T) {
	// Grid count * cell volume approximates the area of a disk.
	g := NewGrid(2, 0.02)
	inDisk := func(x linalg.Vector) bool { return x.Norm() <= 1 }
	count, err := g.Count(linalg.Vector{-1, -1}, linalg.Vector{1, 1}, inDisk, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	approx := float64(count) * g.CellVolume()
	if num.RelErr(approx, math.Pi) > 0.01 {
		t.Errorf("grid area = %g, want ~pi", approx)
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	g := NewGrid(2, 0.1)
	inTri := func(x linalg.Vector) bool {
		return x[0] >= 0 && x[1] >= 0 && x[0]+x[1] <= 1
	}
	pts, err := g.Enumerate(linalg.Vector{0, 0}, linalg.Vector{1, 1}, inTri, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Count(linalg.Vector{0, 0}, linalg.Vector{1, 1}, inTri, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != n {
		t.Errorf("Enumerate %d != Count %d", len(pts), n)
	}
	for _, p := range pts {
		if !inTri(p) {
			t.Fatalf("enumerated point %v outside the set", p)
		}
	}
}

func TestEnumerateBudget(t *testing.T) {
	g := NewGrid(3, 0.001)
	_, err := g.Enumerate(linalg.Vector{0, 0, 0}, linalg.Vector{1, 1, 1},
		func(linalg.Vector) bool { return true }, 1000)
	if !errors.Is(err, ErrTooManyCells) {
		t.Errorf("budget error = %v", err)
	}
}

func TestEnumerateEmptyRange(t *testing.T) {
	g := NewGrid(1, 0.5)
	pts, err := g.Enumerate(linalg.Vector{0.6}, linalg.Vector{0.9},
		func(linalg.Vector) bool { return true }, 100)
	if err != nil || len(pts) != 0 {
		t.Errorf("no grid point lies in (0.6, 0.9): %v, %v", pts, err)
	}
}

func TestGridConnected(t *testing.T) {
	g := NewGrid(2, 0.25)
	// Grid points of the unit square: connected.
	inSquare := func(x linalg.Vector) bool {
		return x[0] >= 0 && x[0] <= 1 && x[1] >= 0 && x[1] <= 1
	}
	pts, err := g.Enumerate(linalg.Vector{0, 0}, linalg.Vector{1, 1}, inSquare, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected(pts) {
		t.Error("square grid graph must be connected")
	}
	// Two separated squares: disconnected.
	inTwo := func(x linalg.Vector) bool {
		return inSquare(x) || (x[0] >= 3 && x[0] <= 4 && x[1] >= 0 && x[1] <= 1)
	}
	pts2, err := g.Enumerate(linalg.Vector{0, 0}, linalg.Vector{4, 1}, inTwo, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected(pts2) {
		t.Error("two separated squares must be disconnected")
	}
	// Degenerate inputs.
	if !g.Connected(nil) || !g.Connected(pts[:1]) {
		t.Error("empty and singleton point sets are trivially connected")
	}
	// A thin diagonal body with too-coarse grid: membership yields
	// isolated points (diagonal neighbours are not adjacent).
	diag := []linalg.Vector{g.Point([]int{0, 0}), g.Point([]int{1, 1}), g.Point([]int{2, 2})}
	if g.Connected(diag) {
		t.Error("diagonal points are not axis-adjacent")
	}
}

func TestHull2DSquare(t *testing.T) {
	pts := []linalg.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	h := Hull2D(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4", len(h))
	}
	if got := PolygonArea(h); num.RelErr(got, 1) > 1e-12 {
		t.Errorf("hull area = %g, want 1", got)
	}
}

func TestHull2DCollinear(t *testing.T) {
	pts := []linalg.Vector{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	h := Hull2D(pts)
	if len(h) > 2 {
		t.Errorf("collinear hull size = %d, want <= 2", len(h))
	}
	if PolygonArea(h) != 0 {
		t.Error("collinear hull area must be 0")
	}
}

func TestHull2DSmallInputs(t *testing.T) {
	if got := Hull2D(nil); len(got) != 0 {
		t.Error("empty hull")
	}
	one := Hull2D([]linalg.Vector{{1, 2}})
	if len(one) != 1 {
		t.Error("single point hull")
	}
}

func TestHullContainsAndVertices(t *testing.T) {
	pts := []linalg.Vector{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	h := NewHull(pts)
	if !h.Contains(linalg.Vector{0.25, 0.25}) || h.Contains(linalg.Vector{1.5, 0}) {
		t.Error("hull membership wrong")
	}
	vs := h.Vertices()
	if len(vs) != 4 {
		t.Errorf("vertices = %d, want 4 (interior point excluded)", len(vs))
	}
	red := h.Reduce()
	if len(red.Points) != 4 {
		t.Errorf("reduced points = %d", len(red.Points))
	}
	if !red.Contains(linalg.Vector{0.25, 0.25}) {
		t.Error("reduction must preserve the hull")
	}
}

func TestHullHighDim(t *testing.T) {
	// Cross-polytope vertices in R^5; origin inside, outside point not.
	d := 5
	var pts []linalg.Vector
	for j := 0; j < d; j++ {
		plus := make(linalg.Vector, d)
		plus[j] = 1
		minus := make(linalg.Vector, d)
		minus[j] = -1
		pts = append(pts, plus, minus)
	}
	h := NewHull(pts)
	if !h.Contains(make(linalg.Vector, d)) {
		t.Error("origin must be inside the cross-polytope hull")
	}
	far := make(linalg.Vector, d)
	far[0], far[1] = 0.9, 0.9
	if h.Contains(far) {
		t.Error("(0.9, 0.9, 0...) is outside the l1 ball")
	}
}

func TestHullCentroidAndBox(t *testing.T) {
	h := NewHull([]linalg.Vector{{0, 0}, {2, 0}, {0, 2}, {2, 2}})
	if !h.Centroid().Equal((linalg.Vector{1, 1}), 1e-12) {
		t.Error("centroid wrong")
	}
	lo, hi := h.BoundingBox()
	if !lo.Equal((linalg.Vector{0, 0}), 0) || !hi.Equal((linalg.Vector{2, 2}), 0) {
		t.Error("bounding box wrong")
	}
}

func TestHullVolumeMC(t *testing.T) {
	r := rng.New(5)
	h := NewHull([]linalg.Vector{{0, 0}, {1, 0}, {0, 1}})
	v := h.VolumeMC(20000, r)
	if math.Abs(v-0.5) > 0.03 {
		t.Errorf("triangle MC volume = %g, want 0.5", v)
	}
}

func TestHullArea2D(t *testing.T) {
	h := NewHull([]linalg.Vector{{0, 0}, {2, 0}, {2, 1}, {0, 1}, {1, 0.5}})
	if got := h.Area2D(); num.RelErr(got, 2) > 1e-12 {
		t.Errorf("area = %g, want 2", got)
	}
	h3 := NewHull([]linalg.Vector{{0, 0, 0}})
	if !math.IsNaN(h3.Area2D()) {
		t.Error("Area2D in 3-D must be NaN")
	}
}

func TestSymmetricDifferenceMC(t *testing.T) {
	r := rng.New(6)
	a := func(x linalg.Vector) bool { return x[0] >= 0 && x[0] <= 1 && x[1] >= 0 && x[1] <= 1 }
	b := func(x linalg.Vector) bool { return x[0] >= 0.5 && x[0] <= 1.5 && x[1] >= 0 && x[1] <= 1 }
	// A Δ B = [0,0.5]x[0,1] ∪ [1,1.5]x[0,1]: volume 1.
	got := SymmetricDifferenceMC(a, b, linalg.Vector{-0.5, -0.5}, linalg.Vector{2, 1.5}, 40000, r)
	if math.Abs(got-1) > 0.08 {
		t.Errorf("symdiff = %g, want 1", got)
	}
	same := SymmetricDifferenceMC(a, a, linalg.Vector{-0.5, -0.5}, linalg.Vector{2, 1.5}, 1000, r)
	if same != 0 {
		t.Errorf("A Δ A = %g, want 0", same)
	}
}

func TestAffentrangerWieackerRatioDecreases(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{100, 1000, 10000, 100000} {
		r := AffentrangerWieackerRatio(2, 4, n)
		if r >= prev {
			t.Errorf("ratio must decrease with n: %g then %g", prev, r)
		}
		prev = r
	}
	if AffentrangerWieackerRatio(2, 4, 2) != 1 {
		t.Error("tiny n must clamp to 1")
	}
}

func TestSampleCountForHull(t *testing.T) {
	n := SampleCountForHull(2, 4, 0.2, 0.1)
	if n < 16 {
		t.Errorf("sample count = %d, too small", n)
	}
	// Tighter epsilon needs more samples.
	if SampleCountForHull(2, 4, 0.05, 0.1) <= n {
		t.Error("sample count must grow as eps shrinks")
	}
	if SampleCountForHull(2, 4, 0, 0.1) != 0 || SampleCountForHull(2, 4, 0.1, 1.5) != 0 {
		t.Error("invalid parameters must return 0")
	}
}

func TestChernoffSampleCount(t *testing.T) {
	n := ChernoffSampleCount(0.05, 0.05)
	if n < 700 || n > 800 {
		t.Errorf("Chernoff count = %d, want ~738", n)
	}
	if ChernoffSampleCount(0, 0.5) != 1 {
		t.Error("degenerate parameters must return 1")
	}
}

func TestTVDistanceUniform(t *testing.T) {
	if got := TVDistanceUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Errorf("uniform TV = %g", got)
	}
	if got := TVDistanceUniform([]int{40, 0, 0, 0}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("point-mass TV = %g, want 0.75", got)
	}
	if TVDistanceUniform(nil) != 0 || TVDistanceUniform([]int{0, 0}) != 0 {
		t.Error("degenerate TV must be 0")
	}
}

func TestMaxRatioToUniform(t *testing.T) {
	if got := MaxRatioToUniform([]int{10, 10}); got != 1 {
		t.Errorf("uniform ratio = %g", got)
	}
	// counts [15, 5]: over-sampled cell ratio 1.5, under-sampled cell
	// inverse ratio 2 — the max is 2.
	if got := MaxRatioToUniform([]int{15, 5}); math.Abs(got-2) > 1e-12 {
		t.Errorf("ratio = %g, want 2", got)
	}
	if !math.IsInf(MaxRatioToUniform([]int{1, 0}), 1) {
		t.Error("empty cell must give infinite ratio")
	}
}

func TestShuffleAndDedup(t *testing.T) {
	r := rng.New(9)
	pts := []linalg.Vector{{1, 1}, {2, 2}, {3, 3}, {1, 1.0000000001}}
	sh := Shuffle(pts, r)
	if len(sh) != len(pts) {
		t.Error("shuffle changed length")
	}
	dd := DedupPoints(pts, 1e-6)
	if len(dd) != 3 {
		t.Errorf("dedup kept %d points, want 3", len(dd))
	}
}
