// Package geom provides the discrete-geometry substrate of the paper's
// definitions: γ-grids (Definition 2.2 discretizes every relation on a
// grid G_p whose points have coordinates that are multiples of the step
// p), grid enumeration for the fixed-dimension sampler (Lemma 3.2), and
// convex hulls (exact in 2-D, LP-membership based in general dimension,
// as used by the reconstruction results of Section 4.3).
package geom

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrTooManyCells is returned when a grid enumeration would exceed its
// cell budget — the expected failure mode of fixed-dimension methods as
// the dimension grows (Section 3's hypothesis is "d fixed" precisely
// because the cell count is (R/γ)^d).
var ErrTooManyCells = errors.New("geom: grid enumeration exceeds cell budget")

// Grid is the set G_p of points in R^d whose coordinates are integer
// multiples of Step.
type Grid struct {
	Dim  int
	Step float64
}

// NewGrid returns a grid of the given dimension and step. Step must be
// positive.
func NewGrid(dim int, step float64) Grid {
	if step <= 0 {
		panic(fmt.Sprintf("geom: non-positive grid step %g", step))
	}
	return Grid{Dim: dim, Step: step}
}

// StepForGamma returns the paper's grid step for accuracy parameter γ in
// dimension d on a body whose inner radius is r: O(γ·r/d^{3/2}). The
// inner-radius factor keeps the step meaningful for thin bodies.
func StepForGamma(gamma float64, d int, innerRadius float64) float64 {
	s := gamma * innerRadius / math.Pow(float64(d), 1.5)
	if s <= 0 || math.IsNaN(s) {
		return 1e-3
	}
	return s
}

// Snap returns the grid point nearest to x.
func (g Grid) Snap(x linalg.Vector) linalg.Vector {
	out := make(linalg.Vector, len(x))
	for i, v := range x {
		out[i] = math.Round(v/g.Step) * g.Step
	}
	return out
}

// Index returns the integer coordinates of the grid point nearest x.
func (g Grid) Index(x linalg.Vector) []int {
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = int(math.Round(v / g.Step))
	}
	return out
}

// Point returns the grid point with the given integer coordinates.
func (g Grid) Point(idx []int) linalg.Vector {
	out := make(linalg.Vector, len(idx))
	for i, v := range idx {
		out[i] = float64(v) * g.Step
	}
	return out
}

// Key returns a hashable identity for the grid point nearest x, used by
// uniformity histograms in tests and experiments.
func (g Grid) Key(x linalg.Vector) string {
	idx := g.Index(x)
	b := make([]byte, 0, 8*len(idx))
	for _, v := range idx {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

// Neighbor returns the grid point one step from x along coordinate axis
// j in direction sign (+1 or -1). x is assumed to be on the grid.
func (g Grid) Neighbor(x linalg.Vector, j int, sign int) linalg.Vector {
	out := x.Clone()
	out[j] += float64(sign) * g.Step
	return out
}

// CellVolume returns Step^Dim, the volume represented by one grid point.
func (g Grid) CellVolume() float64 { return math.Pow(g.Step, float64(g.Dim)) }

// Enumerate lists every grid point inside [lo, hi] that satisfies
// contains, failing with ErrTooManyCells when the box holds more than
// budget cells. This is Lemma 3.2's sampler substrate: polynomial only
// for fixed dimension.
func (g Grid) Enumerate(lo, hi linalg.Vector, contains func(linalg.Vector) bool, budget int) ([]linalg.Vector, error) {
	d := g.Dim
	loIdx := make([]int, d)
	hiIdx := make([]int, d)
	total := 1.0
	for j := 0; j < d; j++ {
		loIdx[j] = int(math.Ceil(lo[j]/g.Step - 1e-12))
		hiIdx[j] = int(math.Floor(hi[j]/g.Step + 1e-12))
		if hiIdx[j] < loIdx[j] {
			return nil, nil
		}
		total *= float64(hiIdx[j] - loIdx[j] + 1)
		if total > float64(budget) {
			return nil, fmt.Errorf("%w: %g cells > budget %d", ErrTooManyCells, total, budget)
		}
	}
	var out []linalg.Vector
	idx := append([]int{}, loIdx...)
	x := make(linalg.Vector, d)
	for {
		for j := 0; j < d; j++ {
			x[j] = float64(idx[j]) * g.Step
		}
		if contains(x) {
			out = append(out, x.Clone())
		}
		// Odometer increment.
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] <= hiIdx[j] {
				break
			}
			idx[j] = loIdx[j]
		}
		if j == d {
			break
		}
	}
	return out, nil
}

// Connected reports whether the given grid points form a connected
// graph under axis-neighbour adjacency — the state space of the paper's
// grid walk. The DFK analysis needs the graph induced on a convex body
// to be connected, which holds when the step is small enough relative to
// the inner radius; this diagnostic catches a γ chosen too coarse.
func (g Grid) Connected(points []linalg.Vector) bool {
	if len(points) <= 1 {
		return true
	}
	index := make(map[string]int, len(points))
	for i, p := range points {
		index[g.Key(p)] = i
	}
	seen := make([]bool, len(points))
	queue := []int{0}
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p := points[cur]
		for j := 0; j < g.Dim; j++ {
			for _, sign := range []int{1, -1} {
				nb := g.Neighbor(p, j, sign)
				if k, ok := index[g.Key(nb)]; ok && !seen[k] {
					seen[k] = true
					visited++
					queue = append(queue, k)
				}
			}
		}
	}
	return visited == len(points)
}

// Count returns the number of grid points inside [lo, hi] satisfying
// contains, with the same budget behaviour as Enumerate but without
// materialising the points.
func (g Grid) Count(lo, hi linalg.Vector, contains func(linalg.Vector) bool, budget int) (int, error) {
	d := g.Dim
	loIdx := make([]int, d)
	hiIdx := make([]int, d)
	total := 1.0
	for j := 0; j < d; j++ {
		loIdx[j] = int(math.Ceil(lo[j]/g.Step - 1e-12))
		hiIdx[j] = int(math.Floor(hi[j]/g.Step + 1e-12))
		if hiIdx[j] < loIdx[j] {
			return 0, nil
		}
		total *= float64(hiIdx[j] - loIdx[j] + 1)
		if total > float64(budget) {
			return 0, fmt.Errorf("%w: %g cells > budget %d", ErrTooManyCells, total, budget)
		}
	}
	count := 0
	idx := append([]int{}, loIdx...)
	x := make(linalg.Vector, d)
	for {
		for j := 0; j < d; j++ {
			x[j] = float64(idx[j]) * g.Step
		}
		if contains(x) {
			count++
		}
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] <= hiIdx[j] {
				break
			}
			idx[j] = loIdx[j]
		}
		if j == d {
			break
		}
	}
	return count, nil
}
