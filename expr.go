package cdb

// The lazy relational-algebra query surface: db.Rel("parcels") returns
// an *Expr; combinators (Where, Intersect, Union, Minus, Project,
// TimeSliceAt) build a plan without touching any geometry; terminal
// verbs (SampleN, Samples, Volume, Reconstruct, Explain) compile the
// expression once into a canonical plan — commutative operands sorted,
// projections collapsed, selections pushed into tuples, LP-infeasible
// disjuncts pruned — and execute it through the handle's shared
// runtime. The canonical plan's hash is the cache key, so structurally
// equal expressions, however they were built, share one prepared
// sampler; provably empty expressions cache as O(1) negative verdicts.
//
//	warm := db.Rel("parcels").Intersect(db.Rel("floodzone")).
//	    Where(cdb.NewAtom(cdb.Vector{1, 0}, 10, false)) // x <= 10
//	pts, err := warm.SampleN(ctx, 1000)
//	v, err := warm.Volume(ctx) // 0 for provably empty expressions

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/runtime"
)

// ErrEmptyExpr marks an expression whose canonical plan has no
// LP-feasible disjunct: it provably denotes the empty set. SampleN and
// Samples return it (wrapped); Volume translates it to 0. The verdict
// is cached as a negative entry, so replays are O(1) and never evict
// warm geometry.
var ErrEmptyExpr = runtime.ErrEmptyExpr

// NewAtom returns the linear constraint coef·x <= b (or < b when
// strict) over an expression's output columns, in order — the building
// block of Expr.Where.
func NewAtom(coef Vector, b float64, strict bool) Atom {
	return Atom{Coef: coef, B: b, Strict: strict}
}

// Expr is a lazy relational-algebra expression over a DB handle.
// Expressions are immutable — every combinator returns a new Expr
// sharing subtrees — and safe for concurrent use; the compiled
// canonical plan is memoized per Expr value, so repeated terminal calls
// on one expression pay the normalization pass once.
type Expr struct {
	db   *DB
	node *query.Node
	opts *Options // nil: inherit the handle's options
	err  error    // construction error (cross-handle operands), surfaced at terminals

	compileOnce  sync.Once
	cp           *query.CanonicalPlan
	cerr         error
	compileNanos int64 // wall time of the memoized compile pass

	symOnce sync.Once
	sq      *query.SymbolicQuery
	serr    error
}

// Rel returns the algebra leaf for a declared relation or a named query
// of the program. Resolution is lazy: an unknown name errors at the
// first terminal verb.
func (db *DB) Rel(name string) *Expr {
	return &Expr{db: db, node: query.NewRel(name)}
}

// derive returns a fresh Expr on the same handle, carrying the
// receiver's option overrides and any construction error.
func (e *Expr) derive(node *query.Node, err error) *Expr {
	ne := &Expr{db: e.db, node: node, opts: e.opts, err: e.err}
	if ne.err == nil {
		ne.err = err
	}
	return ne
}

// checkOperand validates a binary combinator's right operand.
func (e *Expr) checkOperand(o *Expr) error {
	if o == nil {
		return errors.New("cdb: nil Expr operand")
	}
	if o.db != e.db {
		return errors.New("cdb: Expr operands belong to different DB handles")
	}
	return o.err
}

// Where returns the selection of the expression: each atom is a linear
// constraint over the expression's output columns, in order (see
// NewAtom). Selections are pushed into every disjunct's tuple during
// canonicalization.
func (e *Expr) Where(atoms ...Atom) *Expr {
	return e.derive(e.node.Where(atoms...), nil)
}

// Intersect returns the intersection with o. Columns are identified
// positionally; both operands must come from the same DB handle.
func (e *Expr) Intersect(o *Expr) *Expr {
	if err := e.checkOperand(o); err != nil {
		return e.derive(e.node, err)
	}
	return e.derive(e.node.Intersect(o.node), nil)
}

// Union returns the union with o (same arity, positional columns).
func (e *Expr) Union(o *Expr) *Expr {
	if err := e.checkOperand(o); err != nil {
		return e.derive(e.node, err)
	}
	return e.derive(e.node.Union(o.node), nil)
}

// Minus returns the difference e \ o. The right operand must be
// quantifier-free (negation under ∃ leaves the sampling fragment).
func (e *Expr) Minus(o *Expr) *Expr {
	if err := e.checkOperand(o); err != nil {
		return e.derive(e.node, err)
	}
	return e.derive(e.node.Minus(o.node), nil)
}

// Project keeps the named columns in the given order, existentially
// projecting the rest away (Algorithm 2's projection generator when the
// dropped columns are constrained).
func (e *Expr) Project(vars ...string) *Expr {
	return e.derive(e.node.Project(vars...), nil)
}

// Div returns the relational division e ÷ o: the prefixes x over e's
// leading columns such that (x, y) ∈ e for EVERY y ∈ o — the
// universally quantified formula ∀y (o(y) → e(x, y)), with o's columns
// identified positionally with e's trailing columns. Division is
// outside the existential sampling fragment (Theorem 4.4), so the
// sampling terminals reject it; evaluate with EvalSymbolic or
// VolumeSymbolic.
func (e *Expr) Div(o *Expr) *Expr {
	if err := e.checkOperand(o); err != nil {
		return e.derive(e.node, err)
	}
	return e.derive(e.node.Div(o.node), nil)
}

// TimeSliceAt returns the t = t0 snapshot of a space-time expression:
// the time column (the column named "t", or the last one) is
// substituted by t0 and dropped from the output.
func (e *Expr) TimeSliceAt(t0 float64) *Expr {
	return e.derive(e.node.TimeSlice(t0), nil)
}

// WithOptions returns the expression with its sampling options replaced
// wholesale for every terminal verb — the per-expression form of the
// handle-wide Open options. The options key into the prepared cache.
func (e *Expr) WithOptions(opts Options) *Expr {
	ne := e.derive(e.node, nil)
	ne.opts = &opts
	return ne
}

// WithWalk returns the expression with the Markov chain overridden.
func (e *Expr) WithWalk(k WalkKind) *Expr {
	opts := e.effectiveOptions()
	opts.Walk = k
	return e.WithOptions(opts)
}

// WithParams returns the expression with the approximation parameters
// (γ, ε, δ) overridden.
func (e *Expr) WithParams(p Params) *Expr {
	opts := e.effectiveOptions()
	opts.Params = p
	return e.WithOptions(opts)
}

// effectiveOptions resolves the expression's sampling options: its own
// override, or the handle's.
func (e *Expr) effectiveOptions() Options {
	if e.opts != nil {
		return *e.opts
	}
	return e.db.opts
}

// compile lowers the expression to its canonical plan, once per Expr.
func (e *Expr) compile() (*query.CanonicalPlan, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.compileOnce.Do(func() {
		start := time.Now()
		defer func() { e.compileNanos = time.Since(start).Nanoseconds() }()
		plan, err := e.node.Compile(e.db.entry.DB)
		if err != nil {
			e.cerr = err
			return
		}
		e.cp = query.Canonicalize(plan)
	})
	return e.cp, e.cerr
}

// compileSymbolic lowers the expression for symbolic evaluation, once
// per Expr. Unlike compile it accepts the full first-order algebra
// (Minus of a projection, Div). In-fragment expressions reuse the
// memoized canonical plan instead of planning twice.
func (e *Expr) compileSymbolic() (*query.SymbolicQuery, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.symOnce.Do(func() {
		cp, err := e.compile()
		switch {
		case err == nil:
			e.sq = query.SymbolicFromPlan(cp)
		case errors.Is(err, ErrUnsupportedQuery):
			// Full first-order: no sampling plan exists; compile the
			// formula form.
			e.sq, e.serr = e.node.CompileSymbolic(e.db.entry.DB)
		default:
			e.serr = err
		}
	})
	return e.sq, e.serr
}

// Columns returns the expression's output column names, from the
// memoized compile (symbolic, so full-FO expressions resolve too).
func (e *Expr) Columns() ([]string, error) {
	sq, err := e.compileSymbolic()
	if err != nil {
		return nil, err
	}
	return append([]string(nil), sq.OutVars...), nil
}

// CanonicalKey returns the canonical fingerprint of the expression's
// normalized plan: equal for structurally equal expressions regardless
// of construction order, and the basis of the prepared-sampler cache
// key.
func (e *Expr) CanonicalKey() (string, error) {
	cp, err := e.compile()
	if err != nil {
		return "", err
	}
	return cp.Key, nil
}

// prepared resolves the warm sampler for the expression through the
// shared runtime, keyed by the canonical plan hash. Under a traced
// context the compile + prepare stage appears as an "expr.prepare"
// span carrying the cache key and whether the sampler was warm.
func (e *Expr) prepared(ctx context.Context) (*PreparedSampler, string, *query.CanonicalPlan, error) {
	if err := e.db.check(ctx); err != nil {
		return nil, "", nil, err
	}
	_, span := obs.Start(ctx, "expr.prepare")
	defer span.End()
	cp, err := e.compile()
	if err != nil {
		return nil, "", nil, err
	}
	span.Set("compile_nanos", e.compileNanos)
	opts := e.effectiveOptions()
	var (
		ps  *PreparedSampler
		key string
		hit bool
	)
	if e.db.prepSeedSet {
		ps, key, hit, err = e.db.rt.PreparedPlanWithSeed(e.db.entry, cp, opts, e.db.prepSeed)
	} else {
		ps, key, hit, err = e.db.rt.PreparedPlan(e.db.entry, cp, opts)
	}
	span.SetKey(key)
	if hit {
		span.Set("cache_hit", 1)
	}
	return ps, key, cp, err
}

// Sampler returns the prepared (warm) sampler for the expression —
// rounding, well-boundedness witnesses and per-tuple volume estimates
// computed once and cached under the canonical plan key. Expressions
// needing the projection generator return ErrNeedsProjection (SampleN,
// Samples and Volume fall back transparently); provably empty
// expressions return ErrEmptyExpr.
func (e *Expr) Sampler(ctx context.Context) (*PreparedSampler, error) {
	ps, _, _, err := e.prepared(ctx)
	return ps, err
}

// SampleN draws n almost-uniform points of the expression on the
// handle's bounded worker pool, preparing (or reusing) the warm
// sampler. Each call uses a fresh seed from the handle's deterministic
// sequence; use SampleNSeeded to pin one.
func (e *Expr) SampleN(ctx context.Context, n int) ([]Vector, error) {
	return e.SampleNSeeded(ctx, n, e.db.nextSeed())
}

// SampleNSeeded is SampleN with an explicit base seed: deterministic in
// (program, expression, options, n, workers, seed); byte-identical
// concurrent draws coalesce. Projection-needing expressions run
// sequentially on a per-call engine.
func (e *Expr) SampleNSeeded(ctx context.Context, n int, seed uint64) ([]Vector, error) {
	ctx, span := obs.Start(ctx, "expr.sample")
	defer span.End()
	ps, key, cp, err := e.prepared(ctx)
	if errors.Is(err, ErrNeedsProjection) {
		span.Set("projection", 1)
		return e.engineSampleN(ctx, cp, n, seed)
	}
	if err != nil {
		return nil, err
	}
	span.SetKey(key)
	pts, _, err := e.db.rt.Executor().SampleManyCtx(ctx, key, ps, n, e.db.workers, seed)
	return pts, err
}

// engineSampleN draws n samples sequentially from a per-call engine
// observable over the canonical plan — the Algorithm 2 fallback.
func (e *Expr) engineSampleN(ctx context.Context, cp *query.CanonicalPlan, n int, seed uint64) ([]Vector, error) {
	obs, err := e.db.engineWith(ctx, seed, e.effectiveOptions()).ObservableFromPlan(cp.Plan)
	if err != nil {
		return nil, err
	}
	pts := make([]Vector, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, err := obs.Sample()
		if err != nil {
			return nil, err
		}
		pts = append(pts, x)
	}
	return pts, nil
}

// Samples streams almost-uniform points of the expression as a Go
// 1.23+ iterator, like DB.Samples: it yields (point, nil) until the
// context is cancelled, the generator aborts or the consumer breaks.
func (e *Expr) Samples(ctx context.Context) iter.Seq2[Vector, error] {
	seed := e.db.nextSeed()
	return func(yield func(Vector, error) bool) {
		var obs Observable
		ps, _, cp, err := e.prepared(ctx)
		switch {
		case errors.Is(err, ErrNeedsProjection):
			obs, err = e.db.engineWith(ctx, seed, e.effectiveOptions()).ObservableFromPlan(cp.Plan)
		case err == nil:
			obs, err = ps.NewObservableCtx(ctx, seed)
		}
		if err != nil {
			yield(nil, err)
			return
		}
		for {
			if err := ctx.Err(); err != nil {
				yield(nil, err)
				return
			}
			x, err := obs.Sample()
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(x, nil) {
				return
			}
		}
	}
}

// Volume returns the (ε, δ)-relative volume estimate of the expression
// from the warm geometry, deterministic per (program, expression,
// options). A provably empty expression returns 0 — on replay an O(1)
// cached verdict, no geometry touched. Projection-needing expressions
// fall back to a per-call engine under a key-derived seed.
func (e *Expr) Volume(ctx context.Context) (float64, error) {
	ctx, span := obs.Start(ctx, "expr.volume")
	defer span.End()
	ps, key, cp, err := e.prepared(ctx)
	switch {
	case errors.Is(err, ErrEmptyExpr):
		return 0, nil
	case errors.Is(err, ErrNeedsProjection):
		seed := runtime.PrepSeedFor(key + "\x1fexprvol")
		if e.db.prepSeedSet {
			seed = e.db.prepSeed + runtime.PrepSeedFor("exprvol\x1f"+cp.Key)
		}
		return e.db.engineWith(ctx, seed, e.effectiveOptions()).EstimateVolumeFromPlan(cp.Plan)
	case err != nil:
		return 0, err
	}
	span.SetKey(key)
	v, acc, accOK, err := ps.VolumeWithAccuracy(ctx, runtime.PrepSeedFor(key+"\x1fvolume"))
	if err == nil && accOK {
		e.db.rt.RecordVolumeAccuracy(key, acc)
	}
	return v, err
}

// EvalSymbolic evaluates the expression symbolically — the paper's
// §4.3 classical baseline — and returns the quantifier-free DNF
// relation it denotes, as a derived *Relation whose Source() is
// parseable. Unlike the sampling terminals it accepts the FULL
// first-order algebra: Minus of a projection (¬∃, expanded per-disjunct
// complements) and Div (∀, compiled as ¬∃¬), eliminated by
// Fourier–Motzkin with LP redundancy pruning after each step.
//
// The eliminated relation is cached in the handle's runtime keyed by
// the canonical plan hash (the same key the prepared-sampler cache
// uses, so structurally equal expressions share the entry); provably
// empty results cache as O(1) negative verdicts and return a relation
// with no tuples. The cost of a cold call is the classical
// doubly-exponential blow-up (experiment E9) — prefer the sampling
// terminals when an estimate suffices.
func (e *Expr) EvalSymbolic(ctx context.Context) (*Relation, error) {
	if err := e.db.check(ctx); err != nil {
		return nil, err
	}
	sq, err := e.compileSymbolic()
	if err != nil {
		return nil, err
	}
	se, _, _, err := e.db.rt.Symbolic(ctx, e.db.entry, sq)
	if errors.Is(err, ErrEmptyExpr) {
		return &Relation{Name: "derived", Vars: append([]string(nil), sq.OutVars...)}, nil
	}
	if err != nil {
		return nil, err
	}
	// The cached relation is shared across callers; hand out fresh
	// slice headers so renaming columns (or appending tuples) cannot
	// corrupt the cache entry. The tuples themselves stay shared and
	// are immutable by convention.
	return &Relation{
		Name:   se.Rel.Name,
		Vars:   append([]string(nil), se.Rel.Vars...),
		Tuples: append([]Tuple(nil), se.Rel.Tuples...),
	}, nil
}

// VolumeSymbolic returns the EXACT volume of the expression via its
// eliminated DNF: signed inclusion–exclusion over the tuples, each
// intersection measured by Lasserre's recursive formula. Exponential in
// tuple count and dimension (the Lemma 3.1 regime — exact evaluation is
// polynomial only for fixed dimension); relations beyond 20 tuples are
// rejected. Provably empty expressions return 0. Both the eliminated
// relation and the volume live in the symbolic cache entry, so replays
// pay neither elimination nor the inclusion–exclusion pass.
func (e *Expr) VolumeSymbolic(ctx context.Context) (float64, error) {
	if err := e.db.check(ctx); err != nil {
		return 0, err
	}
	sq, err := e.compileSymbolic()
	if err != nil {
		return 0, err
	}
	se, _, _, err := e.db.rt.Symbolic(ctx, e.db.entry, sq)
	if errors.Is(err, ErrEmptyExpr) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return se.ExactVolume(ctx)
}

// Reconstruct runs Algorithm 5 on the expression: per-disjunct hulls of
// n samples each, unioned into a SetEstimate.
func (e *Expr) Reconstruct(ctx context.Context, n int) (*SetEstimate, error) {
	if err := e.db.check(ctx); err != nil {
		return nil, err
	}
	cp, err := e.compile()
	if err != nil {
		return nil, err
	}
	if cp.Empty() {
		return nil, fmt.Errorf("cdb: reconstruct: %w", ErrEmptyExpr)
	}
	eng := e.db.engineWith(ctx, e.db.nextSeed(), e.effectiveOptions())
	return eng.ReconstructFromPlan(cp.Plan, n)
}
