package cdb

// The DB handle: the package's single public entry point for warm,
// concurrent, cancellable sampling. Open parses a program once and
// returns a handle owning the shared runtime — a registry, the
// singleflight prepared-sampler LRU and a bounded worker pool — so the
// paper's pipeline (prepare a (γ, ε, δ)-generator once, then draw cheap
// almost-uniform samples and volume estimates from it) becomes a
// connection/statement lifecycle, in the database/sql tradition: the
// handle is cheap to share, safe for concurrent use, and every method
// takes a context honoured inside the sampling hot loops.

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/runtime"
	"repro/internal/spacetime"
	"repro/internal/walk"
)

// WalkKind selects the Markov chain driving the samplers.
type WalkKind = walk.Kind

// The available walks: the paper's lazy grid walk (faithful), the ball
// walk, and hit-and-run (fastest practical mixing, the default).
const (
	WalkGrid      WalkKind = walk.GridWalk
	WalkBall      WalkKind = walk.BallWalk
	WalkHitAndRun WalkKind = walk.HitAndRun
)

// ErrClosed reports a call on a closed DB handle.
var ErrClosed = errors.New("cdb: database handle is closed")

// ErrNeedsProjection reports a query whose sampling plan requires the
// projection generator (Algorithm 2) and therefore has no cacheable
// prepared sampler. DB.Sampler returns it; SampleN, Samples and Volume
// transparently fall back to a per-call query engine instead.
var ErrNeedsProjection = runtime.ErrNeedsProjection

// dbConfig collects the functional options of Open/OpenDatabase.
type dbConfig struct {
	opts        Options
	cacheSize   int
	poolSize    int
	workers     int
	prepSeed    uint64
	prepSeedSet bool
	audit       AuditConfig
	auditSet    bool
}

// Option configures a DB handle at Open time.
type Option func(*dbConfig)

// WithOptions replaces the handle's sampling Options wholesale (walk
// kind, (γ, ε, δ), step and rounding budgets). Later WithWalk/WithParams
// options apply on top of it.
func WithOptions(opts Options) Option {
	return func(c *dbConfig) { c.opts = opts }
}

// WithWalk selects the Markov chain (default WalkHitAndRun).
func WithWalk(k WalkKind) Option {
	return func(c *dbConfig) { c.opts.Walk = k }
}

// WithParams sets the approximation parameters (γ, ε, δ) of
// Definition 2.2 (default γ=0.2, ε=0.25, δ=0.1).
func WithParams(p Params) Option {
	return func(c *dbConfig) { c.opts.Params = p }
}

// WithCacheSize caps the handle's prepared-sampler LRU (default 64).
func WithCacheSize(n int) Option {
	return func(c *dbConfig) { c.cacheSize = n }
}

// WithPoolSize sets the sampling worker pool size (default GOMAXPROCS).
func WithPoolSize(n int) Option {
	return func(c *dbConfig) { c.poolSize = n }
}

// WithWorkers sets the logical worker count per SampleN call (default
// min(4, pool size)). Output remains deterministic in the worker count:
// worker i owns the sample indices ≡ i (mod workers).
func WithWorkers(n int) Option {
	return func(c *dbConfig) { c.workers = n }
}

// WithPrepSeed pins the handle's sampling randomness: the preparation
// seed for relation/query samplers built through Sampler/SampleN/
// Volume/Samples, and the base of the per-call seed sequence SampleN
// and Samples draw from. By default both derive from the program,
// target and options (cache-key hashing), so results are already
// stable across processes; pin a seed only to decouple them from the
// program text. Spacetime preparations (TimeSlice, TimeWindow, Alibi)
// always use the key-derived seed, keeping their replies shared across
// handles regardless of this option.
func WithPrepSeed(seed uint64) Option {
	return func(c *dbConfig) { c.prepSeed = seed; c.prepSeedSet = true }
}

// WithAudit starts the handle's background self-audit: a small worker
// pool that periodically re-draws batches from warm cache entries and
// cross-checks their empirical cell masses and disjunct shares against
// exact symbolic volumes (where the target is inside the
// symbolic-capable fragment). Failing entries are flagged in CacheStats
// and Explain — never silently evicted. The zero AuditConfig picks
// defaults but leaves the loop stopped; set Interval > 0 to run it.
// Audits also run on demand through DB.AuditOnce regardless of the
// interval.
func WithAudit(cfg AuditConfig) Option {
	return func(c *dbConfig) { c.audit = cfg; c.auditSet = true }
}

// CallOption overrides the handle's sampling options for a single call
// on DB.Sampler/SampleN/SampleNSeeded/Samples/Volume (and, via
// Expr.WithOptions and friends, per expression). The effective options
// key into the prepared-sampler cache, so a per-call override warms its
// own entry and replays against it.
type CallOption func(*Options)

// CallOptions replaces the options wholesale for one call; later
// CallWalk/CallParams options apply on top of it.
func CallOptions(opts Options) CallOption {
	return func(o *Options) { *o = opts }
}

// CallWalk selects the Markov chain for one call.
func CallWalk(k WalkKind) CallOption {
	return func(o *Options) { o.Walk = k }
}

// CallParams sets the approximation parameters (γ, ε, δ) for one call.
func CallParams(p Params) CallOption {
	return func(o *Options) { o.Params = p }
}

// callOpts resolves the effective options of a call: the handle's
// options with the per-call overrides applied.
func (db *DB) callOpts(copts []CallOption) Options {
	opts := db.opts
	for _, o := range copts {
		o(&opts)
	}
	return opts
}

// CacheKindStats is the event and residency snapshot of one prepared
// cache: the sampler (plan), symbolic or alibi cache.
type CacheKindStats struct {
	// Hits counts warm positive entries served (including joins of an
	// in-flight build); NegativeHits counts replayed cached verdicts
	// (empty targets, projection-needing plans, out-of-support slices).
	Hits, NegativeHits int64
	// Misses counts cold builds; Evictions LRU evictions.
	Misses, Evictions int64
	// Entries and NegativeEntries are the cache's CURRENT residency:
	// settled entries in total and how many of them are negative
	// verdicts.
	Entries, NegativeEntries int
}

// CacheStats is a snapshot of the handle's prepared-cache and executor
// counters; see DB.CacheStats. The top-level counters aggregate over
// every cache kind (hits include negative hits), preserving the
// original five-counter view; Plan, Symbolic and Alibi break the same
// traffic down per cache.
type CacheStats struct {
	// Hits counts prepared-cache hits across all kinds, including
	// negative entries and joins of an in-flight build.
	Hits int64
	// Misses counts cold builds.
	Misses int64
	// Evictions counts LRU evictions.
	Evictions int64
	// CoalescedDraws counts batched draws served by an identical
	// in-flight draw.
	CoalescedDraws int64
	// BatchJobs counts worker-pool job executions.
	BatchJobs int64

	// Plan, Symbolic and Alibi are the per-kind breakdowns: prepared
	// samplers, eliminated DNF relations and alibi preparations.
	Plan, Symbolic, Alibi CacheKindStats

	// Audit is the background self-audit's counters, including the keys
	// currently flagged by a failed audit (flagged entries stay cached —
	// quarantine is a visible verdict, not a silent eviction).
	Audit AuditStats
}

// kindCounters accumulates one cache kind's event counts.
type kindCounters struct {
	hits, negHits, misses, evictions atomic.Int64
}

// dbHooks is the handle's obs.Sink: per-kind cache event counters plus
// the executor counters.
type dbHooks struct {
	kinds           [3]kindCounters // indexed by obs.CacheKind
	coalesced, jobs atomic.Int64
}

func (h *dbHooks) CacheEvent(kind obs.CacheKind, outcome obs.CacheOutcome) {
	k := &h.kinds[0]
	if int(kind) < len(h.kinds) {
		k = &h.kinds[kind]
	}
	switch outcome {
	case obs.Hit:
		k.hits.Add(1)
	case obs.NegativeHit:
		k.negHits.Add(1)
	case obs.Miss:
		k.misses.Add(1)
	case obs.Eviction:
		k.evictions.Add(1)
	}
}
func (h *dbHooks) CoalescedDraw() { h.coalesced.Add(1) }
func (h *dbHooks) BatchJob()      { h.jobs.Add(1) }

// kindStats snapshots one kind's counters.
func (h *dbHooks) kindStats(kind obs.CacheKind) CacheKindStats {
	k := &h.kinds[kind]
	return CacheKindStats{
		Hits:         k.hits.Load(),
		NegativeHits: k.negHits.Load(),
		Misses:       k.misses.Load(),
		Evictions:    k.evictions.Load(),
	}
}

// DB is a handle on one parsed constraint database program plus the
// shared warm-geometry runtime: a registry, a singleflight LRU of
// prepared samplers and a bounded sampling worker pool. A DB is safe
// for concurrent use by multiple goroutines; open one handle and share
// it, exactly like database/sql.
//
// Every sampling method takes a context.Context honoured inside the
// hot loops — walk mixing epochs, union acceptance rounds, batched
// worker draws — so a cancelled or expired context aborts an in-flight
// call with ctx.Err() within one walk epoch.
type DB struct {
	rt      *runtime.Runtime
	entry   *runtime.DatabaseEntry
	opts    Options
	workers int
	hooks   *dbHooks

	prepSeed    uint64
	prepSeedSet bool

	seedBase uint64
	seq      atomic.Uint64
	closed   atomic.Bool
}

// Open parses a constraint database program and returns a handle over
// it. See Parse for the grammar. The returned handle owns background
// resources; call Close when done.
func Open(src string, options ...Option) (*DB, error) {
	db, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return openEntry(db, src, options)
}

// OpenDatabase wraps an already-parsed (or programmatically built)
// Database in a handle.
func OpenDatabase(database *Database, options ...Option) (*DB, error) {
	if database == nil {
		return nil, errors.New("cdb: OpenDatabase on a nil database")
	}
	return openEntry(database, "", options)
}

func openEntry(database *Database, src string, options []Option) (*DB, error) {
	cfg := dbConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	hooks := &dbHooks{}
	rt := runtime.NewWithSink(runtime.Config{
		PoolSize:  cfg.poolSize,
		CacheSize: cfg.cacheSize,
	}, hooks)
	entry, _, err := rt.Registry().RegisterParsed("main", src, database)
	if err != nil {
		rt.Close()
		return nil, err
	}
	if cfg.auditSet {
		rt.Auditor().Configure(cfg.audit)
		rt.Auditor().Start()
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = min(4, rt.Pool().Size())
	}
	h := &DB{
		rt:          rt,
		entry:       entry,
		opts:        cfg.opts,
		workers:     workers,
		hooks:       hooks,
		prepSeed:    cfg.prepSeed,
		prepSeedSet: cfg.prepSeedSet,
	}
	// Per-call sampling seeds derive from a base that is itself a pure
	// function of the program and options, so a fixed call sequence on a
	// fresh handle is reproducible run to run.
	h.seedBase = runtime.PrepSeedFor(runtime.SamplerKey(entry.ID, "seedbase", src, cfg.opts.CacheKey()))
	if cfg.prepSeedSet {
		h.seedBase = cfg.prepSeed
	}
	return h, nil
}

// Close releases the handle's worker pool. Calls after Close return
// ErrClosed; in-flight calls finish normally.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	db.rt.Close()
	return nil
}

// Database returns the parsed program behind the handle.
func (db *DB) Database() *Database { return db.entry.DB }

// CacheStats returns a snapshot of the handle's prepared caches and
// batch-executor counters — the observable that lets tests (and
// operators embedding the handle) assert cache sharing: two
// structurally equal expressions cost one Miss and the replays count as
// Hits. The per-kind breakdowns additionally expose negative-hit
// traffic and each cache's current entry counts (total and negative).
func (db *DB) CacheStats() CacheStats {
	plan := db.hooks.kindStats(obs.KindPlan)
	plan.Entries, plan.NegativeEntries = db.rt.Cache().Counts()
	symbolic := db.hooks.kindStats(obs.KindSymbolic)
	symbolic.Entries, symbolic.NegativeEntries = db.rt.SymbolicCache().Counts()
	alibi := db.hooks.kindStats(obs.KindAlibi)
	alibi.Entries, alibi.NegativeEntries = db.rt.AlibiCache().Counts()
	return CacheStats{
		Hits:           plan.Hits + plan.NegativeHits + symbolic.Hits + symbolic.NegativeHits + alibi.Hits + alibi.NegativeHits,
		Misses:         plan.Misses + symbolic.Misses + alibi.Misses,
		Evictions:      plan.Evictions + symbolic.Evictions + alibi.Evictions,
		CoalescedDraws: db.hooks.coalesced.Load(),
		BatchJobs:      db.hooks.jobs.Load(),
		Plan:           plan,
		Symbolic:       symbolic,
		Alibi:          alibi,
		Audit:          db.rt.Auditor().Stats(),
	}
}

// ObservedCosts returns the handle's per-key observed cost table,
// sorted by key: preparation time, draw/bind/queue time, walk effort
// and symbolic-elimination effort under the same canonical keys the
// caches use (per-disjunct attribution under "key#i"). Empty until a
// terminal verb has run.
func (db *DB) ObservedCosts() []ObservedCost {
	return db.rt.Costs().Each()
}

// ObservedCost returns the observed cost recorded under one canonical
// cache key (as reported by Expr.Explain); ok is false when nothing has
// been recorded.
func (db *DB) ObservedCost(key string) (ObservedCost, bool) {
	return db.rt.Costs().Snapshot(key)
}

// Options returns the handle's sampling options.
func (db *DB) Options() Options { return db.opts }

// nextSeed returns the next per-call sampling seed: deterministic in
// the call sequence on a handle, distinct across calls.
func (db *DB) nextSeed() uint64 {
	return db.seedBase + db.seq.Add(1)*0x9E3779B97F4A7C15
}

func (db *DB) check(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// targetArgs resolves name against the program: declared relations are
// sampled directly, query names go through the sampling planner.
func (db *DB) targetArgs(name string) (relName, queryName string) {
	if _, ok := db.entry.DB.Relation(name); ok {
		return name, ""
	}
	if _, ok := db.entry.DB.Query(name); ok {
		return "", name
	}
	// Let the runtime produce its canonical not-found error.
	return name, ""
}

// prepared returns the warm sampler for a relation or query name under
// the given options, building (and caching) it on first use.
func (db *DB) prepared(ctx context.Context, name string, opts Options) (*PreparedSampler, string, error) {
	if err := db.check(ctx); err != nil {
		return nil, "", err
	}
	relName, queryName := db.targetArgs(name)
	if db.prepSeedSet {
		ps, key, _, err := db.rt.PreparedForWithSeed(db.entry, relName, queryName, opts, db.prepSeed)
		return ps, key, err
	}
	ps, key, _, err := db.rt.PreparedFor(db.entry, relName, queryName, opts)
	return ps, key, err
}

// Sampler returns the prepared (warm) sampler for a relation or query
// name: rounding, well-boundedness witnesses and per-tuple volume
// estimates are computed once and cached in the handle's LRU; bind
// request seeds with NewObservable/NewObservableCtx for independent
// generators. Concurrent calls for the same cold target coalesce into
// a single preparation. Per-call overrides (CallWalk, CallParams,
// CallOptions) key into the cache, so each distinct configuration warms
// its own entry.
func (db *DB) Sampler(ctx context.Context, name string, copts ...CallOption) (*PreparedSampler, error) {
	ps, _, err := db.prepared(ctx, name, db.callOpts(copts))
	return ps, err
}

// SampleN draws n almost-uniform points from the named relation or
// query on the handle's bounded worker pool, preparing (or reusing) the
// warm sampler. Each call uses a fresh seed from the handle's
// deterministic sequence; use SampleNSeeded to pin one.
func (db *DB) SampleN(ctx context.Context, name string, n int, copts ...CallOption) ([]Vector, error) {
	return db.SampleNSeeded(ctx, name, n, db.nextSeed(), copts...)
}

// SampleNSeeded is SampleN with an explicit base seed: the output is
// deterministic in (program, target, options, n, workers, seed), and
// byte-identical concurrent draws are coalesced into a single
// execution. Projection-needing queries (no cacheable sampler) run
// sequentially on a per-call engine instead of the pool.
func (db *DB) SampleNSeeded(ctx context.Context, name string, n int, seed uint64, copts ...CallOption) ([]Vector, error) {
	opts := db.callOpts(copts)
	ps, key, err := db.prepared(ctx, name, opts)
	if errors.Is(err, ErrNeedsProjection) {
		return db.querySampleN(ctx, name, n, seed, opts)
	}
	if err != nil {
		return nil, err
	}
	pts, _, err := db.rt.Executor().SampleManyCtx(ctx, key, ps, n, db.workers, seed)
	return pts, err
}

// querySampleN draws n samples sequentially from a query engine
// observable — the fallback for plans that need Algorithm 2.
func (db *DB) querySampleN(ctx context.Context, name string, n int, seed uint64, opts Options) ([]Vector, error) {
	q, ok := db.entry.DB.Query(name)
	if !ok {
		return nil, fmt.Errorf("cdb: query %q not found", name)
	}
	obs, err := db.engineWith(ctx, seed, opts).Observable(q)
	if err != nil {
		return nil, err
	}
	pts := make([]Vector, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, err := obs.Sample()
		if err != nil {
			return nil, err
		}
		pts = append(pts, x)
	}
	return pts, nil
}

// Samples streams almost-uniform points from the named relation or
// query as a Go 1.23+ iterator: it yields (point, nil) until the
// context is cancelled, the generator aborts (probability δ, see
// ErrGeneratorFailed) or the consumer breaks. After a non-nil error the
// sequence stops. The stream binds one generator, so points arrive in
// one walker's deterministic order; independent streams come from
// separate Samples calls.
//
//	for p, err := range db.Samples(ctx, "S") {
//	    if err != nil { ... }
//	    consume(p)
//	    if enough { break }
//	}
func (db *DB) Samples(ctx context.Context, name string, copts ...CallOption) iter.Seq2[Vector, error] {
	seed := db.nextSeed()
	opts := db.callOpts(copts)
	return func(yield func(Vector, error) bool) {
		var obs Observable
		ps, _, err := db.prepared(ctx, name, opts)
		switch {
		case errors.Is(err, ErrNeedsProjection):
			// No cacheable sampler: stream from a per-call engine.
			q, _ := db.entry.DB.Query(name)
			obs, err = db.engineWith(ctx, seed, opts).Observable(q)
		case err == nil:
			obs, err = ps.NewObservableCtx(ctx, seed)
		}
		if err != nil {
			yield(nil, err)
			return
		}
		for {
			if err := ctx.Err(); err != nil {
				yield(nil, err)
				return
			}
			x, err := obs.Sample()
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(x, nil) {
				return
			}
		}
	}
}

// Volume returns the (ε, δ)-relative volume estimate of the named
// relation or query from the warm geometry. Single-tuple relations
// surface the preparation-time estimate directly (no walker is bound);
// unions run the Karp–Luby acceptance pass under a seed derived from
// the cache key, so the result is deterministic per
// (program, target, options). A provably empty (or measure-zero)
// target returns 0 — the same contract as Expr.Volume; replays serve
// the cached verdict in O(1).
func (db *DB) Volume(ctx context.Context, name string, copts ...CallOption) (float64, error) {
	opts := db.callOpts(copts)
	ps, key, err := db.prepared(ctx, name, opts)
	if errors.Is(err, ErrEmptyExpr) {
		// The empty set has volume 0 — same contract as Expr.Volume;
		// replays serve the cached verdict.
		return 0, nil
	}
	if errors.Is(err, ErrNeedsProjection) {
		// No prepared sampler exists for a projection plan; run the
		// engine path under a key-derived seed so the determinism
		// contract above still holds. A pinned WithPrepSeed folds in,
		// mirroring the prepared path.
		q, _ := db.entry.DB.Query(name)
		seed := runtime.PrepSeedFor(runtime.SamplerKey(db.entry.ID, "queryvol", name, opts.CacheKey()))
		if db.prepSeedSet {
			seed = db.prepSeed + runtime.PrepSeedFor("queryvol\x1f"+name)
		}
		return db.engineWith(ctx, seed, opts).EstimateVolume(q)
	}
	if err != nil {
		return 0, err
	}
	v, acc, accOK, err := ps.VolumeWithAccuracy(ctx, runtime.PrepSeedFor(key+"\x1fvolume"))
	if err == nil && accOK {
		db.rt.RecordVolumeAccuracy(key, acc)
	}
	return v, err
}

// Query returns a generator/estimator for a named query via its
// sampling plan (Theorem 4.4's existential fragment: unions,
// intersections, differences and projections of the schema relations).
// The observable's hot loops honour ctx. Each call builds an
// independent engine under a fresh seed.
func (db *DB) Query(ctx context.Context, name string) (Observable, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	q, ok := db.entry.DB.Query(name)
	if !ok {
		return nil, fmt.Errorf("cdb: query %q not found", name)
	}
	return db.engine(ctx, db.nextSeed()).Observable(q)
}

// QueryVolume estimates the volume of a named query's result through
// its sampling plan.
func (db *DB) QueryVolume(ctx context.Context, name string) (float64, error) {
	if err := db.check(ctx); err != nil {
		return 0, err
	}
	q, ok := db.entry.DB.Query(name)
	if !ok {
		return 0, fmt.Errorf("cdb: query %q not found", name)
	}
	return db.engine(ctx, db.nextSeed()).EstimateVolume(q)
}

// Engine returns a query engine over the handle's schema whose
// generators honour ctx, for the surfaces the prepared cache does not
// cover (symbolic evaluation, plan inspection, reconstruction).
func (db *DB) Engine(ctx context.Context, seed uint64) *Engine {
	return db.engine(ctx, seed)
}

func (db *DB) engine(ctx context.Context, seed uint64) *Engine {
	return db.engineWith(ctx, seed, db.opts)
}

// engineWith is engine with explicit (per-call or per-expression)
// options.
func (db *DB) engineWith(ctx context.Context, seed uint64, opts Options) *Engine {
	if ctx != nil && ctx.Done() != nil {
		opts.Interrupt = ctx.Err
	}
	return query.NewEngine(db.entry.DB.Schema, opts, seed)
}

// TimeSlice returns the warm sampler for the t = t0 snapshot of a
// space-time relation (time column = the column named "t", or the last
// one). Slices are cached per (relation, t0, options); empty slices —
// t0 outside the relation's support — are cached as negative entries,
// so repeated out-of-support probes are O(1) and return an error
// wrapping ErrEmptySlice.
func (db *DB) TimeSlice(ctx context.Context, relName string, t0 float64) (*PreparedSampler, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	ps, _, _, err := db.rt.PreparedSlice(db.entry, relName, t0, db.opts)
	return ps, err
}

// TimeWindow returns the warm sampler for the t ∈ [t0, t1] restriction
// of a space-time relation, cached like TimeSlice.
func (db *DB) TimeWindow(ctx context.Context, relName string, t0, t1 float64) (*PreparedSampler, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	ps, _, _, err := db.rt.PreparedWindow(db.entry, relName, t0, t1, db.opts)
	return ps, err
}

// Alibi answers "could the objects of relations a and b have met
// during [t0, t1]?" both by sampling (meeting-volume estimate over the
// meet region) and symbolically (exact Fourier–Motzkin meeting-time
// intervals), cross-checked in the returned report. The meet region,
// the intervals and the volume observable are prepared once and cached
// per (a, b, t0, t1, options); replays only bind seeds.
func (db *DB) Alibi(ctx context.Context, a, b string, t0, t1 float64) (*AlibiReport, error) {
	return db.AlibiSeeded(ctx, a, b, t0, t1, db.nextSeed(), 1)
}

// AlibiSeeded is Alibi with an explicit seed and median-of-k
// amplification of the meeting-volume confidence (k <= 1 runs a single
// estimate).
func (db *DB) AlibiSeeded(ctx context.Context, a, b string, t0, t1 float64, seed uint64, k int) (*AlibiReport, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	if t1 < t0 {
		return nil, fmt.Errorf("cdb: empty alibi window [%g, %g]", t0, t1)
	}
	pa, _, err := db.rt.PreparedAlibi(db.entry, a, b, t0, t1, db.opts)
	if err != nil {
		return nil, err
	}
	return pa.Report(ctx, seed, k)
}

// TimeSupportOf returns the time extent [lo, hi] of a space-time
// relation of the program; ok is false for unknown, empty or
// time-unbounded relations.
func (db *DB) TimeSupportOf(relName string) (lo, hi float64, ok bool) {
	rel, found := db.entry.DB.Relation(relName)
	if !found {
		return 0, 0, false
	}
	return spacetime.Support(rel, spacetime.TimeColumn(rel))
}

// ErrEmptySlice marks a time slice or window with no feasible tuple —
// the probe time lies outside the relation's support. Returned (wrapped)
// by TimeSlice and TimeWindow.
var ErrEmptySlice = runtime.ErrEmptySlice
