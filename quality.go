package cdb

// Statistical quality auditing for the facade: every batched draw
// already streams into per-sampler diagnostics (cell-count chi-square
// over a deterministic partition of the bounding box, member-share
// tracking, acceptance and mixing statistics); WithAudit additionally
// runs a background self-audit that re-draws small batches from warm
// cache entries and cross-checks them against exact symbolic volumes.
// QualityReport exposes the accumulated diagnostics per cache key,
// AuditOnce runs one audit sweep on demand, and CacheStats.Audit (plus
// Expr.Explain) surfaces the verdicts — failing entries are flagged,
// never silently evicted.

import (
	"context"

	"repro/internal/obs"
	"repro/internal/obs/quality"
	"repro/internal/runtime"
)

// QualityReport is the accumulated statistical diagnostics of one
// prepared sampler: observed cell counts vs exact cell masses
// (chi-square with a Wilson–Hilferty p-value), within-run drift,
// member draw shares vs exact canonical shares, acceptance rate,
// rejection-round histogram, lag-1 autocorrelation and effective
// sample size, and the latest audit verdict.
type QualityReport = quality.Report

// AuditConfig tunes the background self-audit started by WithAudit;
// the zero value picks defaults with the background loop disabled.
type AuditConfig = runtime.AuditConfig

// AuditStats summarizes the auditor's lifetime counters and the
// currently flagged cache keys; surfaced by CacheStats.Audit.
type AuditStats = runtime.AuditStats

// AuditEvent is one typed audit verdict: the audited cache key, the
// check ("cells", "shares" or "mixing"), the pass/warn/fail outcome,
// and the test statistic against its threshold.
type AuditEvent = obs.AuditEvent

// AuditOutcome grades an audit check; its String form is
// "pass"/"warn"/"fail".
type AuditOutcome = obs.AuditOutcome

// The audit outcomes, ordered by severity.
const (
	AuditPass AuditOutcome = obs.AuditPass
	AuditWarn AuditOutcome = obs.AuditWarn
	AuditFail AuditOutcome = obs.AuditFail
)

// QualityReport returns the statistical diagnostics accumulated for
// one canonical cache key (as reported by Expr.Explain and
// ObservedCosts); ok is false until a draw has been observed under the
// key. Exact references (cell masses, canonical shares) appear after
// the first audit of the key.
func (db *DB) QualityReport(key string) (QualityReport, bool) {
	return db.rt.Quality().Report(key)
}

// QualityReports returns the diagnostics of every tracked sampler,
// sorted by key.
func (db *DB) QualityReports() []QualityReport {
	return db.rt.Quality().Reports()
}

// AuditOnce runs one synchronous audit sweep over every registered
// warm entry — the on-demand form of the background loop WithAudit
// starts — and returns the emitted verdicts sorted by key. Entries
// outside the symbolic-capable fragment (too many dimensions or
// disjuncts for the exact oracle) are skipped.
func (db *DB) AuditOnce(ctx context.Context) ([]AuditEvent, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	return db.rt.Auditor().RunOnce(ctx)
}
