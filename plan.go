package cdb

// Plan inspection for the algebra surface: Expr.Explain reports the
// normalized (canonical) sampling plan, its stable cache key and the
// cache residency of the whole expression and of each disjunct —
// without preparing any geometry. cmd/cdbquery -explain prints it.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/query"
	"repro/internal/runtime"
)

// QueryPlan is a sampling execution plan: a disjunction of convex-or-
// projected disjuncts over the output coordinates, as produced by
// Engine.NewPlan and by Expr compilation.
type QueryPlan = query.Plan

// DisjunctExplain describes one disjunct of a canonical plan.
type DisjunctExplain struct {
	// Kind is "convex" (a DFK generator) or "projection" (Algorithm 2).
	Kind string
	// Dim is the disjunct's ambient dimension (outputs + existential
	// coordinates); Constraints its row count; ExVars the number of
	// trailing existential coordinates.
	Dim, Constraints, ExVars int
	// CanonicalKey is the fingerprint the disjunct would have as a
	// standalone single-disjunct expression.
	CanonicalKey string
	// Cache is the residency of that standalone entry in the handle's
	// prepared cache: "hit", "negative" or "miss". A disjunct sampled
	// on its own earlier (or shared with another expression) shows
	// "hit".
	Cache string
}

// ExplainReport is the result of Expr.Explain: the rewritten
// (canonical) plan plus cache-key and cache-residency information.
type ExplainReport struct {
	// Columns are the output column names.
	Columns []string
	// CanonicalKey fingerprints the normalized plan: equal for
	// structurally equal expressions regardless of construction order.
	CanonicalKey string
	// CacheKey is the full prepared-cache key (database, canonical
	// plan, options fingerprint).
	CacheKey string
	// Cache is the expression's residency in the prepared cache:
	// "hit", "negative" or "miss". Explain never populates the cache.
	Cache string
	// Empty reports a provably empty expression (every disjunct LP-
	// infeasible); NeedsProjection reports a plan requiring Algorithm 2.
	Empty, NeedsProjection bool
	// SymbolicOnly reports an expression outside the existential
	// sampling fragment (Minus of a projection, Div): it has no
	// sampling plan and only the symbolic terminals apply.
	SymbolicOnly bool
	// SymbolicKey is the prepared-symbolic cache key of the
	// expression's eliminated relation; Symbolic its residency ("hit",
	// "negative" or "miss") — "hit" means EvalSymbolic/VolumeSymbolic
	// replay the eliminated DNF without re-running Fourier–Motzkin.
	SymbolicKey string
	Symbolic    string
	// Plan is the human-readable normalized plan (Plan.Describe).
	Plan string
	// Disjuncts describes each disjunct of the canonical plan.
	Disjuncts []DisjunctExplain
}

// String renders the report for terminals.
func (r *ExplainReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "columns: (%s)\n", strings.Join(r.Columns, ", "))
	fmt.Fprintf(&sb, "canonical key: %s\n", r.CanonicalKey)
	if r.SymbolicOnly {
		fmt.Fprintf(&sb, "symbolic cache: %s\n", r.Symbolic)
		sb.WriteString("outside the sampling fragment (∀ or negation under ∃): symbolic evaluation only\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "cache: %s\n", r.Cache)
	if r.Symbolic != "" {
		fmt.Fprintf(&sb, "symbolic cache: %s\n", r.Symbolic)
	}
	if r.Empty {
		sb.WriteString("provably empty: every disjunct is LP-infeasible (volume 0)\n")
		return sb.String()
	}
	sb.WriteString(r.Plan)
	for i, d := range r.Disjuncts {
		fmt.Fprintf(&sb, "  disjunct %d: cache %s (%s)\n", i, d.Cache, d.CanonicalKey)
	}
	return sb.String()
}

// cacheStateLabel renders a Peek result.
func cacheStateLabel(cached, negative bool) string {
	switch {
	case !cached:
		return "miss"
	case negative:
		return "negative"
	default:
		return "hit"
	}
}

// Explain compiles the expression and reports its canonical plan, key
// and cache residency without preparing any geometry: a cold Explain
// leaves the cache untouched, so "miss" means a terminal verb would pay
// the preparation pass.
func (e *Expr) Explain(ctx context.Context) (*ExplainReport, error) {
	if err := e.db.check(ctx); err != nil {
		return nil, err
	}
	cp, err := e.compile()
	if err != nil {
		if !errors.Is(err, ErrUnsupportedQuery) {
			return nil, err
		}
		// Outside the sampling fragment: no plan exists, but the
		// symbolic terminals apply — report their cache residency.
		sq, serr := e.compileSymbolic()
		if serr != nil {
			return nil, serr
		}
		skey := runtime.SymbolicKey(e.db.entry.ID, sq.Key)
		scached, snegative := e.db.rt.SymbolicCache().Peek(skey)
		return &ExplainReport{
			Columns:      append([]string(nil), sq.OutVars...),
			CanonicalKey: sq.Key,
			SymbolicOnly: true,
			SymbolicKey:  skey,
			Symbolic:     cacheStateLabel(scached, snegative),
		}, nil
	}
	opts := e.effectiveOptions()
	optsKey := opts.CacheKey()
	key := runtime.PlanKey(e.db.entry.ID, cp.Key, optsKey)
	cached, negative := e.db.rt.Cache().Peek(key)
	// In-fragment expressions share the canonical plan key between the
	// sampler and symbolic caches, so the symbolic residency needs no
	// separate compile.
	skey := runtime.SymbolicKey(e.db.entry.ID, cp.Key)
	scached, snegative := e.db.rt.SymbolicCache().Peek(skey)
	rep := &ExplainReport{
		Columns:         append([]string(nil), cp.Plan.OutVars...),
		CanonicalKey:    cp.Key,
		CacheKey:        key,
		Cache:           cacheStateLabel(cached, negative),
		Empty:           cp.Empty(),
		NeedsProjection: cp.NeedsProjection(),
		SymbolicKey:     skey,
		Symbolic:        cacheStateLabel(scached, snegative),
		Plan:            cp.Plan.Describe(),
	}
	dkeys := cp.DisjunctKeys()
	for i, d := range cp.Plan.Disjuncts {
		kind := "convex"
		if d.ExVars > 0 {
			kind = "projection"
		}
		dkey := runtime.PlanKey(e.db.entry.ID, dkeys[i], optsKey)
		dcached, dnegative := e.db.rt.Cache().Peek(dkey)
		rep.Disjuncts = append(rep.Disjuncts, DisjunctExplain{
			Kind:         kind,
			Dim:          d.Poly.Dim(),
			Constraints:  d.Poly.Rows(),
			ExVars:       d.ExVars,
			CanonicalKey: dkeys[i],
			Cache:        cacheStateLabel(dcached, dnegative),
		})
	}
	return rep, nil
}
