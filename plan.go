package cdb

// Plan inspection for the algebra surface: Expr.Explain reports the
// normalized (canonical) sampling plan, its stable cache key and the
// cache residency of the whole expression and of each disjunct —
// without preparing any geometry. cmd/cdbquery -explain prints it.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/query"
	"repro/internal/runtime"
)

// QueryPlan is a sampling execution plan: a disjunction of convex-or-
// projected disjuncts over the output coordinates, as produced by
// Engine.NewPlan and by Expr compilation.
type QueryPlan = query.Plan

// DisjunctExplain describes one disjunct of a canonical plan.
type DisjunctExplain struct {
	// Kind is "convex" (a DFK generator) or "projection" (Algorithm 2).
	Kind string
	// Dim is the disjunct's ambient dimension (outputs + existential
	// coordinates); Constraints its row count; ExVars the number of
	// trailing existential coordinates.
	Dim, Constraints, ExVars int
	// CanonicalKey is the fingerprint the disjunct would have as a
	// standalone single-disjunct expression.
	CanonicalKey string
	// Cache is the residency of that standalone entry in the handle's
	// prepared cache: "hit", "negative" or "miss". A disjunct sampled
	// on its own earlier (or shared with another expression) shows
	// "hit".
	Cache string
	// Observed is the disjunct's measured share of the expression's
	// draws (walk steps, LP membership calls, rejection rounds),
	// recorded under "CacheKey#i". Nil until a draw has run.
	Observed *ObservedCost
}

// StageTiming is one pipeline stage's aggregate timing in an
// ExplainReport: how many times the stage ran for this expression and
// the total wall time it consumed.
type StageTiming struct {
	// Stage is "compile", "prepare", "sample", "bind", "queue" or
	// "eliminate".
	Stage string
	// Count is how many times the stage ran (1 for compile — it is
	// memoized per Expr).
	Count int64
	// Nanos is the cumulative wall time.
	Nanos int64
}

// ExplainReport is the result of Expr.Explain: the rewritten
// (canonical) plan plus cache-key and cache-residency information.
type ExplainReport struct {
	// Columns are the output column names.
	Columns []string
	// CanonicalKey fingerprints the normalized plan: equal for
	// structurally equal expressions regardless of construction order.
	CanonicalKey string
	// CacheKey is the full prepared-cache key (database, canonical
	// plan, options fingerprint).
	CacheKey string
	// Cache is the expression's residency in the prepared cache:
	// "hit", "negative" or "miss". Explain never populates the cache.
	Cache string
	// Empty reports a provably empty expression (every disjunct LP-
	// infeasible); NeedsProjection reports a plan requiring Algorithm 2.
	Empty, NeedsProjection bool
	// SymbolicOnly reports an expression outside the existential
	// sampling fragment (Minus of a projection, Div): it has no
	// sampling plan and only the symbolic terminals apply.
	SymbolicOnly bool
	// SymbolicKey is the prepared-symbolic cache key of the
	// expression's eliminated relation; Symbolic its residency ("hit",
	// "negative" or "miss") — "hit" means EvalSymbolic/VolumeSymbolic
	// replay the eliminated DNF without re-running Fourier–Motzkin.
	SymbolicKey string
	Symbolic    string
	// Plan is the human-readable normalized plan (Plan.Describe).
	Plan string
	// Disjuncts describes each disjunct of the canonical plan.
	Disjuncts []DisjunctExplain

	// CompileNanos is the wall time of this expression's (memoized)
	// compile + canonicalization pass.
	CompileNanos int64
	// Stages aggregates the per-stage timings observed for this
	// expression so far: the compile pass plus whatever the cost table
	// has recorded under its keys (prepare, sample, bind, queue,
	// eliminate). Stages that never ran are omitted.
	Stages []StageTiming
	// Observed is the expression's accumulated measured cost under
	// CacheKey (nil until a terminal verb has run); SymbolicObserved
	// the same under SymbolicKey (nil until EvalSymbolic or
	// VolumeSymbolic has run).
	Observed         *ObservedCost
	SymbolicObserved *ObservedCost

	// Quality is the statistical-quality diagnostics accumulated under
	// CacheKey — cell uniformity, member shares, mixing and the latest
	// self-audit verdict (nil until a draw has been observed).
	// AuditFlagged reports the entry quarantined by a failing audit; the
	// entry stays cached and keeps serving, but the flag (here and in
	// CacheStats) makes the quarantine visible.
	Quality      *QualityReport
	AuditFlagged bool
}

// String renders the report for terminals.
func (r *ExplainReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "columns: (%s)\n", strings.Join(r.Columns, ", "))
	fmt.Fprintf(&sb, "canonical key: %s\n", r.CanonicalKey)
	if r.SymbolicOnly {
		fmt.Fprintf(&sb, "symbolic cache: %s\n", r.Symbolic)
		sb.WriteString("outside the sampling fragment (∀ or negation under ∃): symbolic evaluation only\n")
		r.writeStages(&sb)
		return sb.String()
	}
	fmt.Fprintf(&sb, "cache: %s\n", r.Cache)
	if r.Symbolic != "" {
		fmt.Fprintf(&sb, "symbolic cache: %s\n", r.Symbolic)
	}
	if r.Empty {
		sb.WriteString("provably empty: every disjunct is LP-infeasible (volume 0)\n")
		return sb.String()
	}
	sb.WriteString(r.Plan)
	for i, d := range r.Disjuncts {
		fmt.Fprintf(&sb, "  disjunct %d: cache %s (%s)\n", i, d.Cache, d.CanonicalKey)
		if d.Observed != nil {
			fmt.Fprintf(&sb, "    observed: %s\n", observedLine(d.Observed))
		}
	}
	r.writeStages(&sb)
	if r.Observed != nil {
		fmt.Fprintf(&sb, "observed: %s\n", observedLine(r.Observed))
	}
	if r.Quality != nil {
		fmt.Fprintf(&sb, "quality: %s\n", qualityLine(r.Quality))
	}
	return sb.String()
}

// qualityLine renders the headline quality diagnostics on one line.
func qualityLine(q *QualityReport) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("samples=%d", q.Samples))
	if q.ChiSquareDOF > 0 {
		parts = append(parts, fmt.Sprintf("chi2=%.2f (dof=%d p=%.3f)", q.ChiSquare, q.ChiSquareDOF, q.PValue))
	}
	if q.AcceptanceRate > 0 {
		parts = append(parts, fmt.Sprintf("accept=%.3f", q.AcceptanceRate))
	}
	if q.RoundsPerSample > 0 {
		parts = append(parts, fmt.Sprintf("rounds/sample=%.2f", q.RoundsPerSample))
	}
	if q.ESSWindow > 0 {
		parts = append(parts, fmt.Sprintf("ess=%.0f/%d", q.ESS, q.ESSWindow))
	}
	if q.Audited {
		parts = append(parts, fmt.Sprintf("audit=%s (rounds=%d)", q.AuditOutcome, q.AuditRounds))
	}
	if q.Flagged {
		parts = append(parts, "FLAGGED")
	}
	return strings.Join(parts, " ")
}

// writeStages renders the per-stage timing rows, if any.
func (r *ExplainReport) writeStages(sb *strings.Builder) {
	if len(r.Stages) == 0 {
		return
	}
	sb.WriteString("stages:\n")
	for _, s := range r.Stages {
		fmt.Fprintf(sb, "  %-9s %12v  ×%d\n", s.Stage, time.Duration(s.Nanos), s.Count)
	}
}

// observedLine renders the non-zero counters of an observed cost on
// one line.
func observedLine(c *ObservedCost) string {
	var parts []string
	add := func(name string, v int64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("draws", c.Draws)
	add("samples", c.Samples)
	add("coalesced", c.Coalesced)
	add("walk_steps", c.WalkSteps)
	add("walk_accepted", c.WalkAccepted)
	add("oracle_calls", c.OracleCalls)
	add("rounds", c.Rounds)
	add("accepts", c.Accepts)
	add("evals", c.Evals)
	add("elim_rounds", c.ElimRounds)
	add("elim_vars", c.ElimVars)
	add("atoms_in", c.AtomsIn)
	add("atoms_out", c.AtomsOut)
	if len(parts) == 0 {
		return "(nothing recorded)"
	}
	return strings.Join(parts, " ")
}

// cacheStateLabel renders a Peek result.
func cacheStateLabel(cached, negative bool) string {
	switch {
	case !cached:
		return "miss"
	case negative:
		return "negative"
	default:
		return "hit"
	}
}

// Explain compiles the expression and reports its canonical plan, key
// and cache residency without preparing any geometry: a cold Explain
// leaves the cache untouched, so "miss" means a terminal verb would pay
// the preparation pass.
func (e *Expr) Explain(ctx context.Context) (*ExplainReport, error) {
	if err := e.db.check(ctx); err != nil {
		return nil, err
	}
	cp, err := e.compile()
	if err != nil {
		if !errors.Is(err, ErrUnsupportedQuery) {
			return nil, err
		}
		// Outside the sampling fragment: no plan exists, but the
		// symbolic terminals apply — report their cache residency.
		return e.explainSymbolicOnly()
	}
	opts := e.effectiveOptions()
	optsKey := opts.CacheKey()
	key := runtime.PlanKey(e.db.entry.ID, cp.Key, optsKey)
	cached, negative := e.db.rt.Cache().Peek(key)
	// In-fragment expressions share the canonical plan key between the
	// sampler and symbolic caches, so the symbolic residency needs no
	// separate compile.
	skey := runtime.SymbolicKey(e.db.entry.ID, cp.Key)
	scached, snegative := e.db.rt.SymbolicCache().Peek(skey)
	rep := &ExplainReport{
		Columns:         append([]string(nil), cp.Plan.OutVars...),
		CanonicalKey:    cp.Key,
		CacheKey:        key,
		Cache:           cacheStateLabel(cached, negative),
		Empty:           cp.Empty(),
		NeedsProjection: cp.NeedsProjection(),
		SymbolicKey:     skey,
		Symbolic:        cacheStateLabel(scached, snegative),
		Plan:            cp.Plan.Describe(),
	}
	dkeys := cp.DisjunctKeys()
	for i, d := range cp.Plan.Disjuncts {
		kind := "convex"
		if d.ExVars > 0 {
			kind = "projection"
		}
		dkey := runtime.PlanKey(e.db.entry.ID, dkeys[i], optsKey)
		dcached, dnegative := e.db.rt.Cache().Peek(dkey)
		de := DisjunctExplain{
			Kind:         kind,
			Dim:          d.Poly.Dim(),
			Constraints:  d.Poly.Rows(),
			ExVars:       d.ExVars,
			CanonicalKey: dkeys[i],
			Cache:        cacheStateLabel(dcached, dnegative),
		}
		// The executor attributes each draw's walk effort per union
		// member under "key#i" — the observed per-disjunct cost.
		if snap, ok := e.db.rt.Costs().Snapshot(fmt.Sprintf("%s#%d", key, i)); ok {
			de.Observed = &snap
		}
		rep.Disjuncts = append(rep.Disjuncts, de)
	}
	rep.CompileNanos = e.compileNanos
	if snap, ok := e.db.rt.Costs().Snapshot(key); ok {
		rep.Observed = &snap
	}
	if snap, ok := e.db.rt.Costs().Snapshot(skey); ok {
		rep.SymbolicObserved = &snap
	}
	if q, ok := e.db.rt.Quality().Report(key); ok {
		rep.Quality = &q
		rep.AuditFlagged = q.Flagged
	}
	rep.Stages = stageTimings(e.compileNanos, rep.Observed, rep.SymbolicObserved)
	return rep, nil
}

// explainSymbolicOnly reports the expression through the symbolic
// pipeline's eyes: the symbolic cache key and residency, with no
// sampling plan. It serves full-FO expressions (which have no sampling
// plan at all) and `EXPLAIN SYMBOLIC` SQL statements (which request
// this view explicitly).
func (e *Expr) explainSymbolicOnly() (*ExplainReport, error) {
	sq, serr := e.compileSymbolic()
	if serr != nil {
		return nil, serr
	}
	skey := runtime.SymbolicKey(e.db.entry.ID, sq.Key)
	scached, snegative := e.db.rt.SymbolicCache().Peek(skey)
	rep := &ExplainReport{
		Columns:      append([]string(nil), sq.OutVars...),
		CanonicalKey: sq.Key,
		SymbolicOnly: true,
		SymbolicKey:  skey,
		Symbolic:     cacheStateLabel(scached, snegative),
	}
	if snap, ok := e.db.rt.Costs().Snapshot(skey); ok {
		rep.SymbolicObserved = &snap
	}
	rep.Stages = stageTimings(0, nil, rep.SymbolicObserved)
	return rep, nil
}

// stageTimings folds the compile pass and the observed cost snapshots
// into the per-stage timing rows of an ExplainReport.
func stageTimings(compileNanos int64, observed, symbolic *ObservedCost) []StageTiming {
	var st []StageTiming
	if compileNanos > 0 {
		st = append(st, StageTiming{Stage: "compile", Count: 1, Nanos: compileNanos})
	}
	if observed != nil {
		for _, row := range []StageTiming{
			{Stage: "prepare", Count: observed.Preps, Nanos: observed.PrepNanos},
			{Stage: "sample", Count: observed.Draws, Nanos: observed.SampleNanos},
			{Stage: "bind", Count: observed.Binds, Nanos: observed.BindNanos},
			{Stage: "queue", Count: observed.Draws, Nanos: observed.QueueNanos},
		} {
			if row.Count > 0 || row.Nanos > 0 {
				st = append(st, row)
			}
		}
	}
	if symbolic != nil && symbolic.Evals > 0 {
		st = append(st, StageTiming{Stage: "eliminate", Count: symbolic.Evals, Nanos: symbolic.ElimNanos})
	}
	return st
}
