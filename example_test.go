package cdb_test

import (
	"fmt"

	cdb "repro"
)

// ExampleParse demonstrates the constraint language: relations are DNF
// unions of linear-constraint conjunctions; queries stay unevaluated.
func ExampleParse() {
	db, err := cdb.Parse(`
		rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
		query Q(x)  := exists y. S(x, y);
	`)
	if err != nil {
		panic(err)
	}
	s, _ := db.Relation("S")
	fmt.Println(s.Arity(), len(s.Tuples), s.Contains(cdb.Vector{0.2, 0.2}))
	// Output: 2 1 true
}

// ExampleNewSampler shows the two primitives of the paper: almost
// uniform generation and relative volume estimation.
func ExampleNewSampler() {
	rel := cdb.MustRelation("R", []string{"x", "y"}, cdb.Cube(2, 0, 1))
	gen, err := cdb.NewSampler(rel, 42, cdb.DefaultOptions())
	if err != nil {
		panic(err)
	}
	p, _ := gen.Sample()
	v, _ := gen.Volume()
	fmt.Println(rel.Contains(p), v > 0.5 && v < 1.6)
	// Output: true true
}

// ExampleExactVolume contrasts the fixed-dimension exact computation
// (Lemma 3.1) with the randomized machinery.
func ExampleExactVolume() {
	rel := cdb.MustRelation("U", []string{"x"},
		cdb.Cube(1, 0, 2), cdb.Cube(1, 1, 3)) // [0,2] ∪ [1,3]
	v, err := cdb.ExactVolume(rel)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", v)
	// Output: 3.0
}

// ExampleNewEngine evaluates a query by sampling — no quantifier
// elimination — and symbolically for comparison.
func ExampleNewEngine() {
	db, _ := cdb.Parse(`
		rel S(x, y) := { 0 <= x <= 2, 0 <= y <= 1 };
		query Q(x)  := exists y. S(x, y);
	`)
	q, _ := db.Query("Q")
	engine := cdb.NewEngine(db.Schema, cdb.DefaultOptions(), 7)
	sym, _ := engine.EvalSymbolic(q)
	fmt.Println(sym.Contains(cdb.Vector{1}), sym.Contains(cdb.Vector{3}))
	// Output: true false
}
