package cdb_test

// Tests of the lazy relational-algebra surface: canonical-key stability
// across construction orders, cache sharing between surfaces, negative
// caching of provably empty expressions, per-expression and per-call
// option overrides, and the projection/timeslice operators.

import (
	"context"
	"errors"
	"math"
	"testing"

	cdb "repro"
)

const algebraProgram = `
rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel B(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel C(x, y) := { 3 <= x <= 4, 0 <= y <= 1 };
rel M(x, t) := { 0 <= x <= 2, 0 <= t <= 10, x <= t };
rel E(x, y) := { x <= 0, x >= 1, 0 <= y <= 1 };
query Q(x)  := exists y. A(x, y);
query QF(x, y) := A(x, y) & x <= 1/2;
`

func openAlgebra(t *testing.T) *cdb.DB {
	t.Helper()
	db, err := cdb.Open(algebraProgram)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestExprCanonicalKeyStability: structurally equal expressions built
// in different operand orders produce identical canonical keys and —
// the acceptance criterion — share a single prepared-sampler cache
// entry, asserted via the handle's cache metrics.
func TestExprCanonicalKeyStability(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	e1 := db.Rel("A").Union(db.Rel("C")).Intersect(db.Rel("B"))
	e2 := db.Rel("B").Intersect(db.Rel("C").Union(db.Rel("A")))
	k1, err := e1.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := e2.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("canonical keys differ across construction orders:\n%s\n%s", k1, k2)
	}

	before := db.CacheStats()
	v1, err := e1.Volume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats()
	if got := mid.Misses - before.Misses; got != 1 {
		t.Fatalf("first Volume cost %d cache misses, want 1", got)
	}
	v2, err := e2.Volume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if got := after.Misses - mid.Misses; got != 0 {
		t.Fatalf("structurally equal expression re-prepared: %d extra misses", got)
	}
	if got := after.Hits - mid.Hits; got < 1 {
		t.Fatalf("structurally equal expression did not hit the shared entry (hits +%d)", got)
	}
	if v1 != v2 {
		t.Fatalf("shared prepared geometry must give identical estimates: %g vs %g", v1, v2)
	}
	// ([0,1] ∪ [3,4]) ∩ [0.5,2] = [0.5,1] × [0,1]: area 1/2.
	if math.Abs(v1-0.5) > 0.3 {
		t.Fatalf("volume %g implausible for a set of area 0.5", v1)
	}
}

// TestExprSharesCacheWithNamedTargets: a name-addressed relation and
// the equal algebra expression resolve to one cache entry (the runtime
// keys by canonical plan hash, not name).
func TestExprSharesCacheWithNamedTargets(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	if _, err := db.SampleN(ctx, "A", 4); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	if _, err := db.Rel("A").SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("Expr over a warm named relation re-prepared (+%d misses)", after.Misses-before.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatal("Expr over a warm named relation did not hit its cache entry")
	}

	// The quantifier-free named query QF and the equivalent expression
	// share an entry, too.
	if _, err := db.SampleN(ctx, "QF", 4); err != nil {
		t.Fatal(err)
	}
	before = db.CacheStats()
	expr := db.Rel("A").Where(cdb.NewAtom(cdb.Vector{1, 0}, 0.5, false))
	if _, err := expr.SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	after = db.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("expression equal to warm query QF re-prepared (+%d misses)", after.Misses-before.Misses)
	}
}

// TestExprEmptyNegative: an LP-infeasible intersection returns volume 0,
// replays as an O(1) cached verdict, and a sweep of distinct empty
// expressions never evicts warm geometry.
func TestExprEmptyNegative(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	// Warm real geometry first.
	if _, err := db.SampleN(ctx, "A", 4); err != nil {
		t.Fatal(err)
	}

	empty := db.Rel("A").Intersect(db.Rel("C")) // [0,1] ∩ [3,4] = ∅
	v, err := empty.Volume(ctx)
	if err != nil || v != 0 {
		t.Fatalf("empty Volume = (%g, %v), want (0, nil)", v, err)
	}
	// The name-addressed path agrees: an empty declared relation has
	// volume 0, not an error.
	if v, err := db.Volume(ctx, "E"); err != nil || v != 0 {
		t.Fatalf("Volume(E) = (%g, %v), want (0, nil)", v, err)
	}
	if _, err := db.SampleN(ctx, "E", 1); !errors.Is(err, cdb.ErrEmptyExpr) {
		t.Fatalf("SampleN(E) = %v, want ErrEmptyExpr", err)
	}
	if _, err := empty.SampleN(ctx, 1); !errors.Is(err, cdb.ErrEmptyExpr) {
		t.Fatalf("SampleN on empty expression = %v, want ErrEmptyExpr", err)
	}

	// Replay: the verdict is served from the cache — hits grow, misses
	// don't.
	before := db.CacheStats()
	replay := db.Rel("C").Intersect(db.Rel("A")) // other operand order, same key
	if v, err := replay.Volume(ctx); err != nil || v != 0 {
		t.Fatalf("replayed empty Volume = (%g, %v), want (0, nil)", v, err)
	}
	after := db.CacheStats()
	if after.Misses != before.Misses {
		t.Fatal("replayed empty expression re-ran the build")
	}
	if after.Hits <= before.Hits {
		t.Fatal("replayed empty expression did not hit the negative entry")
	}

	// A sweep of distinct empty expressions (distinct canonical keys)
	// must not evict the warm geometry of A.
	for i := 0; i < 100; i++ {
		e := db.Rel("A").Intersect(db.Rel("C")).
			Where(cdb.NewAtom(cdb.Vector{1, 0}, float64(i), false))
		if v, err := e.Volume(ctx); err != nil || v != 0 {
			t.Fatalf("sweep %d: Volume = (%g, %v)", i, v, err)
		}
	}
	before = db.CacheStats()
	if _, err := db.SampleN(ctx, "A", 4); err != nil {
		t.Fatal(err)
	}
	after = db.CacheStats()
	if after.Misses != before.Misses {
		t.Fatal("negative sweep evicted warm geometry: re-sampling A paid a cold build")
	}
}

// TestExprOperators exercises Where/Union/Minus/Project/TimeSliceAt
// semantics through volumes and membership.
func TestExprOperators(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	// Minus: [0,1]² \ [0.5,2]×[0,1] = [0,0.5)×[0,1], area 1/2.
	v, err := db.Rel("A").Minus(db.Rel("B")).Volume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 0.3 {
		t.Fatalf("Minus volume %g, want ≈ 0.5", v)
	}

	// Union of disjoint unit squares: area 2.
	v, err = db.Rel("A").Union(db.Rel("C")).Volume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 0.8 {
		t.Fatalf("Union volume %g, want ≈ 2", v)
	}

	// Projection: samples of π_x(A) live in [0,1].
	pts, err := db.Rel("A").Project("x").SampleN(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if len(p) != 1 || p[0] < -1e-9 || p[0] > 1+1e-9 {
			t.Fatalf("projected sample %v outside [0,1]", p)
		}
	}

	// TimeSliceAt: M(x, t) with x <= t sliced at t=1 is [0,1] in x.
	sl := db.Rel("M").TimeSliceAt(1)
	cols, err := sl.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "x" {
		t.Fatalf("TimeSliceAt columns = %v, want [x]", cols)
	}
	pts, err = sl.SampleN(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p[0] < -1e-9 || p[0] > 1+1e-9 {
			t.Fatalf("slice sample %v outside [0,1]", p)
		}
	}

	// Where: selection pushes into the tuple.
	pts, err = db.Rel("A").Where(cdb.NewAtom(cdb.Vector{1, 1}, 0.5, false)).SampleN(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p[0]+p[1] > 0.5+1e-9 {
			t.Fatalf("Where sample %v violates x + y <= 0.5", p)
		}
	}

	// Samples iterator over an expression.
	got := 0
	for p, err := range db.Rel("A").Intersect(db.Rel("B")).Samples(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		if p[0] < 0.5-1e-9 || p[0] > 1+1e-9 {
			t.Fatalf("intersection sample %v outside [0.5,1]", p)
		}
		if got++; got >= 10 {
			break
		}
	}

	// Reconstruct an expression: hulls cover the intersection.
	est, err := db.Rel("A").Intersect(db.Rel("B")).Reconstruct(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Hulls) == 0 {
		t.Fatal("Reconstruct returned no hulls")
	}
}

// TestExprProjectionFallback: expressions needing Algorithm 2 fall back
// to a per-call engine for SampleN/Volume and report ErrNeedsProjection
// from Sampler.
func TestExprProjectionFallback(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	q := db.Rel("Q") // exists y. A(x, y)
	if _, err := q.Sampler(ctx); !errors.Is(err, cdb.ErrNeedsProjection) {
		t.Fatalf("Sampler on projection expression = %v, want ErrNeedsProjection", err)
	}
	pts, err := q.SampleN(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || len(pts[0]) != 1 {
		t.Fatalf("projection samples %d×%d, want 5×1", len(pts), len(pts[0]))
	}
	v, err := q.Volume(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 0.5 {
		t.Fatalf("projection volume %g, want ≈ 1", v)
	}
}

// TestExprOptionOverrides: WithWalk/WithParams/WithOptions key into the
// cache — distinct configurations warm distinct entries; equal
// configurations share.
func TestExprOptionOverrides(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	base := db.Rel("A")
	if _, err := base.SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	ball := base.WithWalk(cdb.WalkBall)
	if _, err := ball.SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats()
	if mid.Misses != before.Misses+1 {
		t.Fatalf("WithWalk override should warm its own entry (misses +%d, want +1)", mid.Misses-before.Misses)
	}
	// Same override again: shared.
	if _, err := db.Rel("A").WithWalk(cdb.WalkBall).SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Misses != mid.Misses {
		t.Fatal("identical WithWalk override re-prepared")
	}
}

// TestDBCallOptions: the per-call overrides on the name-addressed
// methods (the ROADMAP open item) key into the cache the same way.
func TestDBCallOptions(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	if _, err := db.SampleN(ctx, "A", 4); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	if _, err := db.SampleN(ctx, "A", 4, cdb.CallWalk(cdb.WalkBall)); err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats()
	if mid.Misses != before.Misses+1 {
		t.Fatalf("CallWalk override should warm its own entry (misses +%d, want +1)", mid.Misses-before.Misses)
	}
	if _, err := db.Volume(ctx, "A", cdb.CallWalk(cdb.WalkBall)); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Misses != mid.Misses {
		t.Fatal("Volume with the same CallWalk override re-prepared")
	}
	if _, err := db.Sampler(ctx, "A", cdb.CallParams(cdb.Params{Gamma: 0.3, Eps: 0.3, Delta: 0.2})); err != nil {
		t.Fatal(err)
	}
	if got := db.CacheStats().Misses; got != after.Misses+1 {
		t.Fatalf("CallParams override should warm its own entry (misses %d, want %d)", got, after.Misses+1)
	}
}

// TestExprExplain: Explain reports the canonical plan and cache
// residency without preparing geometry; labels transition miss → hit.
func TestExprExplain(t *testing.T) {
	db := openAlgebra(t)
	ctx := context.Background()

	e := db.Rel("A").Intersect(db.Rel("B"))
	rep, err := e.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache != "miss" {
		t.Fatalf("cold Explain cache = %q, want miss", rep.Cache)
	}
	if rep.Empty || rep.NeedsProjection {
		t.Fatalf("unexpected flags: empty=%v proj=%v", rep.Empty, rep.NeedsProjection)
	}
	if len(rep.Disjuncts) != 1 || rep.Disjuncts[0].Kind != "convex" {
		t.Fatalf("disjuncts = %+v", rep.Disjuncts)
	}
	if db.CacheStats().Misses != 0 {
		t.Fatal("Explain populated the cache")
	}

	if _, err := e.SampleN(ctx, 4); err != nil {
		t.Fatal(err)
	}
	rep, err = e.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache != "hit" {
		t.Fatalf("warm Explain cache = %q, want hit", rep.Cache)
	}

	// Empty expressions label "negative" once the verdict is cached.
	empty := db.Rel("A").Intersect(db.Rel("C"))
	if _, err := empty.Volume(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err = empty.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache != "negative" || !rep.Empty {
		t.Fatalf("empty Explain = cache %q empty %v, want negative/true", rep.Cache, rep.Empty)
	}
}

// TestExprCrossHandle: operands from different handles are rejected at
// the terminal, not silently mixed.
func TestExprCrossHandle(t *testing.T) {
	db1 := openAlgebra(t)
	db2 := openAlgebra(t)
	e := db1.Rel("A").Intersect(db2.Rel("B"))
	if _, err := e.Volume(context.Background()); err == nil {
		t.Fatal("cross-handle operands must error")
	}
}

// FuzzExprCanonicalVolume: canonicalization never changes geometry —
// an expression and its operand-permuted twin have equal canonical
// keys and byte-identical volume estimates (they execute the same
// canonical plan under the same cache entry).
func FuzzExprCanonicalVolume(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 2.0, 0.25)
	f.Add(-1.0, 0.5, 0.0, 1.0, 0.1)
	f.Add(0.0, 4.0, 3.0, 4.0, 2.0)
	f.Fuzz(func(t *testing.T, aLo, aHi, bLo, bHi, cut float64) {
		// Keep the boxes sane and bounded.
		if !(aLo < aHi && bLo < bHi) || aHi-aLo > 100 || bHi-bLo > 100 ||
			math.Abs(aLo) > 100 || math.Abs(bLo) > 100 || math.Abs(cut) > 100 {
			t.Skip()
		}
		db, err := cdb.OpenDatabase(mustAlgebraDB(t, aLo, aHi, bLo, bHi))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		ctx := context.Background()
		sel := cdb.NewAtom(cdb.Vector{1, 1}, cut, false)

		e1 := db.Rel("FA").Intersect(db.Rel("FB")).Where(sel)
		e2 := db.Rel("FB").Where(sel).Intersect(db.Rel("FA"))
		k1, err1 := e1.CanonicalKey()
		k2, err2 := e2.CanonicalKey()
		if err1 != nil || err2 != nil {
			t.Fatalf("canonical keys: %v / %v", err1, err2)
		}
		if k1 != k2 {
			t.Fatalf("keys differ under operand permutation:\n%s\n%s", k1, k2)
		}
		v1, err1 := e1.Volume(ctx)
		v2, err2 := e2.Volume(ctx)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("volume errors diverge: %v / %v", err1, err2)
		}
		if err1 == nil && v1 != v2 {
			t.Fatalf("canonicalization changed the volume estimate: %g vs %g", v1, v2)
		}
	})
}

// mustAlgebraDB builds the two-box fuzz schema in code.
func mustAlgebraDB(t *testing.T, aLo, aHi, bLo, bHi float64) *cdb.Database {
	t.Helper()
	db := &cdb.Database{Schema: cdb.Schema{}}
	for _, r := range []*cdb.Relation{
		cdb.MustRelation("FA", []string{"x", "y"}, cdb.Box(cdb.Vector{aLo, aLo}, cdb.Vector{aHi, aHi})),
		cdb.MustRelation("FB", []string{"x", "y"}, cdb.Box(cdb.Vector{bLo, bLo}, cdb.Vector{bHi, bHi})),
	} {
		db.Schema[r.Name] = r
		db.Names = append(db.Names, r.Name)
	}
	return db
}
