package cdb_test

import (
	"testing"

	cdb "repro"
)

func TestMedianVolumeFacade(t *testing.T) {
	rel := cdb.MustRelation("R", []string{"x", "y"}, cdb.Cube(2, 0, 3))
	v, err := cdb.MedianVolume(rel, 5, 11, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v < 6.5 || v > 12.5 {
		t.Errorf("median volume = %g, want ~9", v)
	}
}

func TestSampleManyFacade(t *testing.T) {
	rel := cdb.MustRelation("R", []string{"x"}, cdb.Cube(1, 0, 1), cdb.Cube(1, 4, 5))
	pts, err := cdb.SampleMany(rel, 200, 4, 13, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 200 {
		t.Fatalf("samples = %d", len(pts))
	}
	low := 0
	for _, p := range pts {
		if !rel.Contains(p) {
			t.Fatalf("sample %v outside the relation", p)
		}
		if p[0] < 2 {
			low++
		}
	}
	if low == 0 || low == 200 {
		t.Error("parallel sampling missed a union component")
	}
}
