package cdb_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	cdb "repro"
)

// slowOptions makes every single sample pay a multi-million-step walk
// epoch while keeping the one-off preparation affordable (one phase
// sample per telescoping phase), so a cancelled context must abort
// inside an epoch, not between samples.
func slowOptions() cdb.Option {
	return cdb.WithOptions(cdb.Options{
		Params:          cdb.Params{Gamma: 0.2, Eps: 0.25, Delta: 0.1},
		Walk:            cdb.WalkHitAndRun,
		WalkSteps:       1_200_000,
		MaxPhaseSamples: 1,
	})
}

const slowProgram = `
rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
rel U(x, y) := { 0 <= x <= 1, 0 <= y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
`

// TestSampleNCancelledMidWalk: a deadline that fires inside the first
// walk epoch must surface ctx.Err() promptly — within a small multiple
// of the epoch the walker was in when the deadline hit, never after the
// full draw.
func TestSampleNCancelledMidWalk(t *testing.T) {
	db, err := cdb.Open(slowProgram, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Warm the prepared geometry under a background context, so the
	// timed phase below measures only the draw.
	if _, err := db.Sampler(context.Background(), "S"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.SampleNSeeded(ctx, "S", 16, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SampleN error = %v, want context.DeadlineExceeded", err)
	}
	// 16 samples × 1.2M steps would run for many seconds; an in-epoch
	// abort returns within roughly one epoch past the deadline (bound is
	// generous for slow race-instrumented CI runners).
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestVolumeCancelledMidWalk: the union acceptance pass of a
// multi-tuple relation (which the single-tuple fast path does not
// cover) must honour the deadline inside its member walks.
func TestVolumeCancelledMidWalk(t *testing.T) {
	db, err := cdb.Open(slowProgram, slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Sampler(context.Background(), "U"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.Volume(ctx, "U")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Volume error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestCancelledBatchDoesNotLeakWorkers: cancelled batched draws must
// return their workers to the pool — later draws on the same handle
// still complete, and the process goroutine count returns to baseline.
func TestCancelledBatchDoesNotLeakWorkers(t *testing.T) {
	db, err := cdb.Open(handleProgram, cdb.WithPoolSize(2), cdb.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Sampler(context.Background(), "S"); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled before (or during) the draw
		if _, err := db.SampleNSeeded(ctx, "S", 10_000, uint64(i)); !errors.Is(err, context.Canceled) {
			t.Fatalf("draw %d: err = %v, want context.Canceled", i, err)
		}
	}

	// The pool must still serve work after the cancelled draws.
	pts, err := db.SampleNSeeded(context.Background(), "S", 64, 99)
	if err != nil || len(pts) != 64 {
		t.Fatalf("post-cancel draw: %d points, err %v", len(pts), err)
	}

	// Give transient worker goroutines a moment to drain, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+4 {
		t.Fatalf("goroutines grew from %d to %d after cancelled draws", baseline, g)
	}
}

// TestPreCancelledCallsShortCircuit: an already-cancelled context never
// reaches the samplers.
func TestPreCancelledCallsShortCircuit(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.Sampler(ctx, "S"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sampler = %v, want context.Canceled", err)
	}
	if _, err := db.Volume(ctx, "S"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Volume = %v, want context.Canceled", err)
	}
	if _, err := db.Query(ctx, "Q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query = %v, want context.Canceled", err)
	}
}

// TestQueryVolumeCancelledMidWalk: the projection-plan volume path (an
// ∃-query has no prepared sampler) must also surface ctx.Err() from
// inside its sampling loops.
func TestQueryVolumeCancelledMidWalk(t *testing.T) {
	db, err := cdb.Open(slowProgram+"\nquery Q(x) := exists y. S(x, y);\n", slowOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.QueryVolume(ctx, "Q")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryVolume error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}
