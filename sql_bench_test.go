package cdb_test

import (
	"context"
	"testing"

	cdb "repro"
)

// BenchmarkSQLCompile measures the parse + compile + canonicalize cost
// of a SQL statement vs constructing the equivalent Expr tree directly
// — the front end's overhead before the shared cache takes over.
func BenchmarkSQLCompile(b *testing.B) {
	ctx := context.Background()
	db, err := cdb.Open(sqlTestProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const stmt = "SELECT * FROM R WHERE x + y <= 1"

	b.Run("sql", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e, err := db.SQL(ctx, stmt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.CanonicalKey(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("expr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := db.Rel("R").Where(cdb.NewAtom(cdb.Vector{1, 1}, 1, false))
			if _, err := e.CanonicalKey(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSQLWarmDraw measures a warm 16-point draw issued through
// ExecSQL vs the same draw through a pre-built Expr: both hit the same
// prepared sampler; the difference is the per-statement parse+compile.
func BenchmarkSQLWarmDraw(b *testing.B) {
	ctx := context.Background()
	db, err := cdb.Open(sqlTestProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const stmt = "SELECT * FROM R WHERE x + y <= 1 SAMPLE 16 SEED 1"
	expr := db.Rel("R").Where(cdb.NewAtom(cdb.Vector{1, 1}, 1, false))

	// Warm the shared entry once.
	if _, err := db.ExecSQL(ctx, stmt); err != nil {
		b.Fatal(err)
	}

	b.Run("sql", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.ExecSQL(ctx, stmt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Points) != 16 {
				b.Fatal("short draw")
			}
		}
	})
	b.Run("expr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pts, err := expr.SampleNSeeded(ctx, 16, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != 16 {
				b.Fatal("short draw")
			}
		}
	})
}
