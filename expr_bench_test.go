package cdb_test

// Benchmarks of the algebra surface: a composed expression served warm
// from the canonical-plan cache vs the historical per-call Engine
// evaluation of the equivalent query (which replans and rebuilds the
// DFK generators on every request), plus the O(1) replay of a provably
// empty expression. Results are recorded in BENCH_cdbserve.json.

import (
	"context"
	"testing"

	cdb "repro"
)

// The 4D composed workload mirrors BENCH_cdbserve.json's cache bench:
// in R^4 the preparation pass (rounding, well-boundedness witnesses,
// telescoping volume estimates per tuple) dominates, which is exactly
// the cost the canonical-plan cache amortises.
const benchAlgebraProgram = `
rel A(x, y, z, w) := { 0 <= x <= 1, 0 <= y <= 1, 0 <= z <= 1, 0 <= w <= 1 };
rel B(x, y, z, w) := { 0.25 <= x <= 2, 0 <= y <= 1, 0 <= z <= 1, 0 <= w <= 1 };
rel C(x, y, z, w) := { 1.5 <= x <= 3, 0 <= y <= 1, 0 <= z <= 1, 0 <= w <= 1 };
query COMP(x, y, z, w) := (A(x, y, z, w) | C(x, y, z, w)) & B(x, y, z, w);
`

const benchComposedN = 16

// BenchmarkExprComposedWarm: the composed expression (A ∪ C) ∩ B
// sampled through the warm canonical-plan cache — the per-request cost
// is one cache lookup plus generator binds.
func BenchmarkExprComposedWarm(b *testing.B) {
	db, err := cdb.Open(benchAlgebraProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	expr := db.Rel("A").Union(db.Rel("C")).Intersect(db.Rel("B"))
	if _, err := expr.SampleN(ctx, benchComposedN); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.SampleNSeeded(ctx, benchComposedN, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineComposedPerCall: the same composed set evaluated the
// historical way — a fresh query engine per request, replanning the
// formula and rebuilding rounding/well-boundedness/volume setup before
// the first sample.
func BenchmarkEngineComposedPerCall(b *testing.B) {
	db, err := cdb.Open(benchAlgebraProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	q, ok := db.Database().Query("COMP")
	if !ok {
		b.Fatal("query COMP not found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := cdb.NewEngine(db.Database().Schema, cdb.DefaultOptions(), uint64(i)+1)
		obs, err := eng.Observable(q)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < benchComposedN; j++ {
			if _, err := obs.Sample(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExprEmptyReplay: a provably empty expression replayed
// against its cached negative verdict — volume 0 in O(1), no geometry
// touched.
func BenchmarkExprEmptyReplay(b *testing.B) {
	db, err := cdb.Open(benchAlgebraProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	empty := db.Rel("A").Intersect(db.Rel("C"))
	if v, err := empty.Volume(ctx); err != nil || v != 0 {
		b.Fatalf("warmup: (%g, %v)", v, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, err := empty.Volume(ctx); err != nil || v != 0 {
			b.Fatal(v, err)
		}
	}
}
