package cdb_test

// Instrumentation-overhead benchmarks: the tracing/metrics layer added
// for observability must be free when unused. The warm composed-
// expression draw (the same workload as BenchmarkExprComposedWarm) runs
// untraced — the spans reduce to one context lookup returning nil —
// and traced, where every stage allocates and fills a span. Results
// and the overhead bound are recorded in BENCH_obs.json.

import (
	"context"
	"testing"

	cdb "repro"
)

// BenchmarkExprComposedWarmUntraced: the PR-5 warm-path workload on an
// untraced context. Compared against BenchmarkExprComposedWarm's
// recorded baseline to bound the disabled-instrumentation overhead.
func BenchmarkExprComposedWarmUntraced(b *testing.B) {
	db, err := cdb.Open(benchAlgebraProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	expr := db.Rel("A").Union(db.Rel("C")).Intersect(db.Rel("B"))
	if _, err := expr.SampleN(ctx, benchComposedN); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.SampleNSeeded(ctx, benchComposedN, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExprComposedWarmTraced: the same workload under an active
// trace — each draw grows an expr.sample → {expr.prepare, sample.batch}
// span tree with per-stage counters.
func BenchmarkExprComposedWarmTraced(b *testing.B) {
	db, err := cdb.Open(benchAlgebraProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	expr := db.Rel("A").Union(db.Rel("C")).Intersect(db.Rel("B"))
	if _, err := expr.SampleN(context.Background(), benchComposedN); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := cdb.StartTrace(context.Background(), "bench")
		if _, err := expr.SampleNSeeded(ctx, benchComposedN, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}
