package cdb

// Request tracing for the facade: StartTrace turns any context into a
// traced one; every pipeline stage that runs under it — expression
// compilation, sampler preparation, batched draws, symbolic
// elimination — appends a timed child span with its observed counters
// (walk steps, LP membership calls, bind and queue-wait time,
// elimination rounds, atom growth). When no trace is active the
// instrumentation costs one context lookup per stage and nothing per
// sample, so handles pay (almost) nothing by default.
//
//	ctx, span := cdb.StartTrace(ctx, "report")
//	pts, err := db.Rel("parcels").SampleN(ctx, 1000)
//	span.End()
//	fmt.Print(span) // the span tree with per-stage timings

import (
	"context"

	"repro/internal/obs"
)

// Span is one timed stage of a traced request: a name, a duration, the
// stage's cache key when it has one, observed counters and child
// stages. Every method is safe on a nil *Span, and String renders the
// whole subtree (cmd/cdbquery -trace prints it). Spans are created by
// StartTrace and grown by the pipeline; End is idempotent.
type Span = obs.Span

// ObservedCost is the accumulated measured cost of one cache key:
// preparation time, draw/bind/queue time, walk effort (steps, LP
// membership calls), rejection rounds and symbolic-elimination effort.
// Surfaced by Expr.Explain (whole expression and per disjunct) and by
// the cdbserve debug endpoint.
type ObservedCost = obs.CostSnapshot

// StartTrace derives a traced context: stages executed under it attach
// child spans to the returned root. End the root when the request is
// done; its String method renders the tree. Tracing is per-request
// opt-in — contexts without a trace skip all span work.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	return obs.NewTrace(ctx, name)
}

// SpanFromContext returns the span active in ctx, or nil when the
// context is untraced (nil is safe to use: every Span method no-ops).
func SpanFromContext(ctx context.Context) *Span {
	return obs.FromContext(ctx)
}
