package cdb_test

// Benchmarks behind BENCH_symbolic.json: the prepared-symbolic cache
// win (cold Fourier–Motzkin eliminate vs cached replay) and the
// symbolic-vs-sampled volume wall-clock across dimensions d = 2..6.
// All run under the CI -benchtime=1x smoke.

import (
	"context"
	"fmt"
	"testing"

	cdb "repro"
)

// symbolicBenchProgram defines a 3-D relation whose projection needs
// two rounds of elimination, plus the division pair.
const symbolicBenchProgram = `
rel P(x, y, z) := { 0 <= x <= 1, 0 <= y <= 1, 0 <= z <= 1,
                    x + y + z <= 2, x - y + z <= 1.5, y - z <= 0.8 };
rel N(x, y)    := { 0 <= x <= 3, 0 <= y <= 1, x + y <= 3 };
rel O(y)       := { 0 <= y <= 1 };
`

// BenchmarkSymbolicColdEliminate: full quantifier elimination per call
// — a fresh handle per iteration, so every EvalSymbolic pays the
// Fourier–Motzkin pass (projection of P onto x: two eliminations with
// LP pruning).
func BenchmarkSymbolicColdEliminate(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		db, err := cdb.Open(symbolicBenchProgram)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Rel("P").Project("x").EvalSymbolic(ctx); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkSymbolicWarmReplay: the same elimination served from the
// prepared-symbolic cache — replays bind nothing and pay two lookups.
func BenchmarkSymbolicWarmReplay(b *testing.B) {
	db, err := cdb.Open(symbolicBenchProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	expr := db.Rel("P").Project("x")
	if _, err := expr.EvalSymbolic(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.EvalSymbolic(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// projectionProgram builds a d-dimensional cut cube whose last
// coordinate is projected away — the workload both evaluations share.
func projectionProgram(d int) string {
	vars := ""
	atoms := ""
	for j := 0; j < d; j++ {
		if j > 0 {
			vars += ", "
			atoms += ", "
		}
		vars += fmt.Sprintf("x%d", j)
		atoms += fmt.Sprintf("0 <= x%d <= 1", j)
	}
	sum := ""
	for j := 0; j < d; j++ {
		if j > 0 {
			sum += " + "
		}
		sum += fmt.Sprintf("x%d", j)
	}
	return fmt.Sprintf("rel H(%s) := { %s, %s <= %g };", vars, atoms, sum, float64(d)-0.5)
}

func projectionCols(d int) []string {
	cols := make([]string, d-1)
	for j := range cols {
		cols[j] = fmt.Sprintf("x%d", j)
	}
	return cols
}

// BenchmarkVolumeSymbolicVsSampled compares, per dimension d = 2..6,
// the exact symbolic volume (Fourier–Motzkin elimination of one
// coordinate + Lasserre inclusion–exclusion, cold each iteration)
// against the Monte-Carlo estimate of the same projection (per-call
// projection generator, the Algorithm 2 fallback).
func BenchmarkVolumeSymbolicVsSampled(b *testing.B) {
	ctx := context.Background()
	for d := 2; d <= 6; d++ {
		src := projectionProgram(d)
		cols := projectionCols(d)
		b.Run(fmt.Sprintf("symbolic/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := cdb.Open(src)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Rel("H").Project(cols...).VolumeSymbolic(ctx); err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
		b.Run(fmt.Sprintf("sampled/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db, err := cdb.Open(src)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Rel("H").Project(cols...).Volume(ctx); err != nil {
					b.Fatal(err)
				}
				db.Close()
			}
		})
	}
}
