// Package cdb is the public API of the constraint-database uniform
// generation library — a reproduction of Gross-Amblard & de Rougemont,
// "Uniform generation in spatial constraint databases and applications"
// (PODS 2000 / JCSS 72(3), 2006).
//
// The library evaluates queries over linear constraint databases by
// random sampling instead of symbolic quantifier elimination. The
// single public entry point is the DB handle:
//
//	db, _ := cdb.Open(`rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };`)
//	defer db.Close()
//	pts, _ := db.SampleN(ctx, "S", 100) // almost uniform points of S
//	v, _ := db.Volume(ctx, "S")         // relative estimate of area(S)
//
// Open parses the program once and returns a handle owning the warm
// sampling runtime — a singleflight LRU of prepared samplers and a
// bounded worker pool — in the database/sql tradition: share one handle
// across goroutines; every method takes a context that cancels
// in-flight walks. Underneath:
//
//   - Each well-bounded relation gets an almost-uniform
//     (γ, ε, δ)-generator and an (ε, δ)-relative volume estimator (the
//     Dyer–Frieze–Kannan walk composed through union, intersection,
//     difference and projection — the paper's Theorems 4.1–4.3).
//   - DB.Query / DB.Engine evaluate FO+LIN queries either symbolically
//     (Fourier–Motzkin baseline) or by sampling, including shape
//     reconstruction as unions of convex hulls (Algorithms 3–5).
//   - DB.TimeSlice / DB.Alibi serve the moving-object workload (see
//     motion.go).
//
// The package-level functions (NewSampler, EstimateVolume, SampleMany,
// MedianVolume, ...) predate the handle and are deprecated in favour
// of the DB methods — see the migration table in README.md. They now
// route through a lazily created package-default runtime sharing one
// warm prepared-sampler cache (see compat.go), so repeat calls on
// structurally equal relations no longer pay the full setup; their
// signatures and error behaviour are unchanged.
package cdb

import (
	"context"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/query"
	"repro/internal/reconstruct"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/semialg"
	"repro/internal/walk"
)

// Vector is a point in R^d.
type Vector = linalg.Vector

// Relation is a generalized relation: a finite union of generalized
// tuples (conjunctions of linear constraints).
type Relation = constraint.Relation

// Tuple is a generalized tuple (a convex set).
type Tuple = constraint.Tuple

// Atom is an atomic linear constraint coef·x <= b (or < b).
type Atom = constraint.Atom

// Database is a parsed program: named relations and queries.
type Database = constraint.Database

// Query is a named, unevaluated FO+LIN formula.
type Query = constraint.Query

// Formula is a FO+LIN formula AST node.
type Formula = constraint.Formula

// Schema maps relation names to relations.
type Schema = constraint.Schema

// Generator produces almost-uniform samples (Definition 2.2).
type Generator = core.Generator

// Observable couples a generator with a relative volume estimator — the
// paper's central notion.
type Observable = core.Observable

// Options tunes the sampling machinery; see DefaultOptions and
// FaithfulOptions.
type Options = core.Options

// Params are the approximation parameters (γ, ε, δ).
type Params = core.Params

// Engine evaluates queries symbolically or by sampling.
type Engine = query.Engine

// SetEstimate is a reconstruction: a union of convex hulls (Definition
// 4.1 estimators built by Algorithms 3–5).
type SetEstimate = reconstruct.SetEstimate

// Hull is a convex hull with LP membership.
type Hull = geom.Hull

// Polytope is an H-polytope {x : Ax <= b}.
type Polytope = polytope.Polytope

// Errors surfaced by the samplers.
var (
	// ErrGeneratorFailed is the probability-δ abort of Definition 2.2.
	ErrGeneratorFailed = core.ErrGeneratorFailed
	// ErrNotPolyRelated signals a violated poly-relatedness condition
	// (Propositions 4.1/4.2).
	ErrNotPolyRelated = core.ErrNotPolyRelated
	// ErrNotWellBounded signals a missing inner/outer ball witness.
	ErrNotWellBounded = core.ErrNotWellBounded
	// ErrUnsupportedQuery signals a formula outside the existential
	// sampling fragment (Theorem 4.4's scope).
	ErrUnsupportedQuery = query.ErrUnsupported
)

// Parse parses a constraint database program. See internal/constraint
// for the grammar; briefly:
//
//	rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 } | { 2x + y < 4 };
//	query Q(x)  := exists y. S(x, y);
func Parse(src string) (*Database, error) { return constraint.Parse(src) }

// ParseRelation parses a single "Name(vars) := body" declaration against
// an optional schema.
func ParseRelation(src string, schema Schema) (*Relation, error) {
	return constraint.ParseRelation(src, schema)
}

// ParseFormula parses a bare formula.
func ParseFormula(src string) (Formula, error) { return constraint.ParseFormula(src) }

// DefaultOptions returns the practical configuration: hit-and-run walks
// (fast mixing), moderate parameters γ=0.2, ε=0.25, δ=0.1.
func DefaultOptions() Options {
	return Options{Params: core.DefaultParams(), Walk: walk.HitAndRun}
}

// FaithfulOptions returns the paper-faithful configuration: the lazy
// grid walk of the Dyer–Frieze–Kannan theorem. Slower, used by the
// uniformity experiments.
func FaithfulOptions() Options {
	return Options{Params: core.DefaultParams(), Walk: walk.GridWalk}
}

// NewSampler returns an Observable — almost-uniform generator plus
// volume estimator — for a well-bounded generalized relation (a DFK
// generator per tuple under the union combinator).
//
// Deprecated: NewSampler is not cancellable. Open a DB handle and use
// DB.Sampler(ctx, name) (cached, coalesced) or DB.Samples for a
// streaming iterator. Kept for compatibility; calls now bind seed
// against the package's shared warm cache (see compat.go), so repeat
// calls on structurally equal relations skip the rounding/volume
// setup. Preparation problems fall back to the original cold path,
// preserving the historical error behaviour.
func NewSampler(rel *Relation, seed uint64, opts Options) (Observable, error) {
	if _, ps, _, ok := preparedRelation(rel, opts); ok {
		if obs, err := ps.NewObservable(seed); err == nil {
			return obs, nil
		}
	}
	return core.NewRelationObservable(rel, rng.New(seed), opts)
}

// PreparedSampler is the cache-friendly form of NewSampler: the
// expensive setup (per-tuple rounding, well-boundedness witnesses and
// volume estimation) is paid once by PrepareSampler, and NewObservable
// (or NewObservableCtx, for cancellable generators) then binds request
// seeds to the warm geometry for the cost of a walker initialisation.
// A PreparedSampler is safe for concurrent use — binds create
// independent generators — and is what DB.Sampler returns and every
// prepared-sampler cache stores.
type PreparedSampler = runtime.Prepared

// PrepareSampler runs the full sampler setup for a well-bounded relation
// under a fixed preparation seed. The prepared geometry (and therefore
// every volume estimate and every sample stream drawn from it) is
// deterministic in (rel, prepSeed, opts).
//
// Most callers want DB.Sampler instead, which caches preparations in
// the handle's LRU and coalesces concurrent builds.
func PrepareSampler(rel *Relation, prepSeed uint64, opts Options) (*PreparedSampler, error) {
	return runtime.Prepare(rel, prepSeed, opts)
}

// EstimateVolume is a convenience for NewSampler(...).Volume().
//
// Deprecated: use DB.Volume(ctx, name), which honours ctx. Kept for
// compatibility; calls now share the package's warm cache and follow
// the DB.Volume contract — single-tuple relations return the
// preparation-time estimate with no walker bound at all, unions bind
// seed for the Karp–Luby acceptance pass.
func EstimateVolume(rel *Relation, seed uint64, opts Options) (float64, error) {
	if _, ps, _, ok := preparedRelation(rel, opts); ok {
		return ps.Volume(seed)
	}
	obs, err := core.NewRelationObservable(rel, rng.New(seed), opts)
	if err != nil {
		return 0, err
	}
	return obs.Volume()
}

// MedianVolume amplifies the confidence of the volume estimate by
// running k independent estimators in parallel and returning the median
// — the classical powering that realises Definition 2.2's ln(1/δ)
// complexity dependence.
//
// Deprecated: prefer DB.Volume over a handle, or
// PreparedSampler.MedianVolumeCtx for warm median amplification with a
// context. Kept for compatibility; the k estimators now bind
// independent seeds against one shared warm preparation instead of
// each paying a cold sampler setup.
func MedianVolume(rel *Relation, k int, baseSeed uint64, opts Options) (float64, error) {
	if _, ps, _, ok := preparedRelation(rel, opts); ok {
		return ps.MedianVolumeCtx(context.Background(), k, baseSeed)
	}
	return core.MedianVolume(func(seed uint64) (Observable, error) {
		return core.NewRelationObservable(rel, rng.New(seed), opts)
	}, k, baseSeed)
}

// SampleMany draws n almost-uniform samples using w parallel workers,
// each with an independent generator.
//
// Deprecated: use DB.SampleN(ctx, name, n), which honours ctx. Kept
// for compatibility; calls now run on the package's shared bounded
// worker pool over cached geometry, and byte-identical concurrent
// draws coalesce into a single execution — the same batched executor
// behind DB.SampleN.
func SampleMany(rel *Relation, n, w int, baseSeed uint64, opts Options) ([]Vector, error) {
	if rt, ps, key, ok := preparedRelation(rel, opts); ok {
		pts, _, err := rt.Executor().SampleMany(key, ps, n, w, baseSeed)
		return pts, err
	}
	return core.SampleMany(func(seed uint64) (Observable, error) {
		return core.NewRelationObservable(rel, rng.New(seed), opts)
	}, n, w, baseSeed)
}

// ExactVolume computes the exact volume by fixed-dimension methods
// (Lemma 3.1); exponential in the dimension, exact ground truth for
// d <= 9 and up to 20 tuples.
func ExactVolume(rel *Relation) (float64, error) { return core.ExactVolume(rel) }

// NewSemialgSampler builds the paper's §5 extension: an Observable for a
// convex body given by polynomial constraints, e.g.
//
//	gen, err := cdb.NewSemialgSampler(`x^2 + y^2 <= 1`, []string{"x", "y"},
//	    cdb.Vector{0, 0}, 1, 1, 42, cdb.DefaultOptions())
//
// The body is used purely as a membership oracle — the identical DFK
// machinery as the linear case. center/innerR/outerR are the
// well-boundedness witnesses (an inscribed and an enclosing ball). The
// constraints must define a convex set; a randomized convexity probe
// rejects detectable violations (the paper's caveat that polynomial
// conjunctions need not be convex).
func NewSemialgSampler(src string, vars []string, center Vector, innerR, outerR float64, seed uint64, opts Options) (Observable, error) {
	body, err := semialg.ParseBody(src, vars)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	lo := make(Vector, len(center))
	hi := make(Vector, len(center))
	for i := range center {
		lo[i] = center[i] - outerR
		hi[i] = center[i] + outerR
	}
	if err := body.ConvexityProbe(lo, hi, 256, r.Split()); err != nil {
		return nil, err
	}
	return core.NewConvex(body, center, innerR, outerR, r, opts)
}

// NewEngine returns a query engine over the schema.
func NewEngine(schema Schema, opts Options, seed uint64) *Engine {
	return query.NewEngine(schema, opts, seed)
}

// ReconstructConvex draws n samples from a convex relation's generator
// and returns the convex hull — the Definition 4.1 estimator of
// Lemma 4.1.
func ReconstructConvex(gen Generator, n int) (*Hull, error) {
	return reconstruct.HullFromGenerator(gen, n)
}

// ProjectAndReconstruct is Algorithm 3: estimate the projection of a
// convex polytope onto the coordinates keep by sampling + hull, without
// symbolic elimination.
func ProjectAndReconstruct(p *Polytope, keep []int, n int, seed uint64, opts Options) (*Hull, error) {
	return reconstruct.ProjectionEstimate(p, keep, n, rng.New(seed), opts)
}

// Shape constructors re-exported for building relations in code.

// Cube returns [lo, hi]^d as a tuple.
func Cube(d int, lo, hi float64) Tuple { return constraint.Cube(d, lo, hi) }

// Box returns the axis-aligned box [lo_i, hi_i].
func Box(lo, hi Vector) Tuple { return constraint.Box(lo, hi) }

// Simplex returns {x_i >= 0, Σx_i <= s}.
func Simplex(d int, s float64) Tuple { return constraint.Simplex(d, s) }

// MustRelation builds a relation from tuples, panicking on arity errors.
func MustRelation(name string, vars []string, tuples ...Tuple) *Relation {
	return constraint.MustRelation(name, vars, tuples...)
}
