// Command cdbsample draws almost-uniform samples from a relation of a
// constraint database program.
//
// Usage:
//
//	cdbsample -file db.cdb -rel S -n 100 [-seed 42] [-walk hit-and-run|grid] [-eps 0.25]
//
// Each output line is one sample point, tab-separated coordinates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	cdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbsample: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		relName = flag.String("rel", "", "relation to sample (required)")
		n       = flag.Int("n", 10, "number of samples")
		seed    = flag.Uint64("seed", 42, "random seed")
		walkK   = flag.String("walk", "hit-and-run", "walk kind: hit-and-run | grid")
		eps     = flag.Float64("eps", 0.25, "distribution quality ε")
		gamma   = flag.Float64("gamma", 0.2, "grid resolution γ")
		delta   = flag.Float64("delta", 0.1, "failure probability δ")
	)
	flag.Parse()
	if *file == "" || *relName == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cdb.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	rel, ok := db.Relation(*relName)
	if !ok {
		log.Fatalf("relation %q not found (have %v)", *relName, db.Names)
	}
	opts := cdb.DefaultOptions()
	if *walkK == "grid" {
		opts = cdb.FaithfulOptions()
	}
	opts.Params = cdb.Params{Gamma: *gamma, Eps: *eps, Delta: *delta}
	gen, err := cdb.NewSampler(rel, *seed, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *n; i++ {
		x, err := gen.Sample()
		if err != nil {
			log.Fatalf("sample %d: %v", i, err)
		}
		parts := make([]string, len(x))
		for j, v := range x {
			parts[j] = fmt.Sprintf("%.6g", v)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
