// Command cdbsample draws almost-uniform samples from a relation (or
// quantifier-free query) of a constraint database program, through the
// cdb.DB handle: the sampler is prepared once on the handle's warm
// cache and the batch draw runs on its bounded worker pool. Ctrl-C
// cancels an in-flight draw mid-walk.
//
// Usage:
//
//	cdbsample -file db.cdb -rel S -n 100 [-seed 42] [-walk hit-and-run|grid] [-eps 0.25]
//
// Each output line is one sample point, tab-separated coordinates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	cdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbsample: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		relName = flag.String("rel", "", "relation to sample (required)")
		n       = flag.Int("n", 10, "number of samples")
		seed    = flag.Uint64("seed", 42, "random seed")
		walkK   = flag.String("walk", "hit-and-run", "walk kind: hit-and-run | grid | ball")
		eps     = flag.Float64("eps", 0.25, "distribution quality ε")
		gamma   = flag.Float64("gamma", 0.2, "grid resolution γ")
		delta   = flag.Float64("delta", 0.1, "failure probability δ")
		trace   = flag.Bool("trace", false, "trace the draw and print the span tree (per-stage durations and counters) to stderr")
	)
	flag.Parse()
	if *file == "" || *relName == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	kind := cdb.WalkHitAndRun
	switch *walkK {
	case "grid":
		kind = cdb.WalkGrid
	case "ball":
		kind = cdb.WalkBall
	}
	db, err := cdb.Open(string(src),
		cdb.WithWalk(kind),
		cdb.WithParams(cdb.Params{Gamma: *gamma, Eps: *eps, Delta: *delta}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var root *cdb.Span
	if *trace {
		ctx, root = cdb.StartTrace(ctx, "cdbsample")
	}

	pts, err := db.SampleNSeeded(ctx, *relName, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if root != nil {
		root.End()
		fmt.Fprint(os.Stderr, root.String())
	}
	for _, x := range pts {
		parts := make([]string, len(x))
		for j, v := range x {
			parts[j] = fmt.Sprintf("%.6g", v)
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
