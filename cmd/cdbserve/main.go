// Command cdbserve runs the constraint-database sampling service: a
// thin HTTP adapter over the shared sampling runtime (the same
// registry, prepared-sampler cache and bounded worker pool behind the
// cdb.DB handle).
//
// Usage:
//
//	cdbserve [-addr :8080] [-pool 8] [-cache 64] [db.cdb ...]
//
// Trailing file arguments are preloaded programs, registered under
// their file base names (without extension). See README.md for the API
// reference and a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		pool    = flag.Int("pool", 0, "sampling worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 64, "prepared-sampler cache capacity")
		workers = flag.Int("workers", 0, "default logical workers per sample request (0 = min(4, pool))")
		maxN    = flag.Int("max-samples", 0, "per-request sample cap (0 = 1e6)")
		// Large NDJSON streams and long-polling dashboards need tunable
		// write/idle deadlines; 0 keeps Go's no-timeout default.
		writeTimeout  = flag.Duration("write-timeout", 0, "max duration for writing a response (0 = unlimited)")
		idleTimeout   = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout (0 = unlimited)")
		slowQuery     = flag.Duration("slow-query", 0, "log requests slower than this with their trace id and span summary (0 = disabled)")
		auditInterval = flag.Duration("audit-interval", 0, "background quality-audit sweep interval: warm samplers are re-drawn and cross-checked against exact symbolic volumes (0 = disabled; POST /v1/audit still audits on demand)")
		// The debug listener serves pprof heap/CPU profiles and the raw
		// cost tables: unauthenticated by design, so it binds separately —
		// keep it on loopback or an ops-only network, never the public
		// address.
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars, /debug/costs and /debug/quality on this UNAUTHENTICATED ops-only address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	srv := server.New(server.Config{
		PoolSize:       *pool,
		CacheSize:      *cache,
		DefaultWorkers: *workers,
		MaxSamples:     *maxN,
		SlowQuery:      *slowQuery,
		AuditInterval:  *auditInterval,
	})
	defer srv.Close()

	for _, path := range flag.Args() {
		preload(srv, path)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener on %s (unauthenticated: pprof, expvar, cost tables)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
}

// preload registers a program file under its base name.
func preload(srv *server.Server, path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("preload %s: %v", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	entry, _, err := srv.Registry().Register(name, string(src))
	if err != nil {
		log.Fatalf("preload %s: %v", path, err)
	}
	log.Printf("preloaded database %q (%d relations, %d queries)",
		entry.ID, len(entry.DB.Names), len(entry.DB.Queries))
}
