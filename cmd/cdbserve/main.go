// Command cdbserve runs the constraint-database sampling service: a
// thin HTTP adapter over the shared sampling runtime (the same
// registry, prepared-sampler cache and bounded worker pool behind the
// cdb.DB handle).
//
// Usage:
//
//	cdbserve [-addr :8080] [-pool 8] [-cache 64] [db.cdb ...]
//
// Trailing file arguments are preloaded programs, registered under
// their file base names (without extension). See README.md for the API
// reference and a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		pool    = flag.Int("pool", 0, "sampling worker pool size (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 64, "prepared-sampler cache capacity")
		workers = flag.Int("workers", 0, "default logical workers per sample request (0 = min(4, pool))")
		maxN    = flag.Int("max-samples", 0, "per-request sample cap (0 = 1e6)")
		// Large NDJSON streams and long-polling dashboards need tunable
		// write/idle deadlines; 0 keeps Go's no-timeout default.
		writeTimeout  = flag.Duration("write-timeout", 0, "max duration for writing a response (0 = unlimited)")
		idleTimeout   = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout (0 = unlimited)")
		slowQuery     = flag.Duration("slow-query", 0, "log requests slower than this with their trace id and span summary (0 = disabled)")
		auditInterval = flag.Duration("audit-interval", 0, "background quality-audit sweep interval: warm samplers are re-drawn and cross-checked against exact symbolic volumes (0 = disabled; POST /v1/audit still audits on demand)")
		// The debug listener serves pprof heap/CPU profiles and the raw
		// cost tables: unauthenticated by design, so it binds separately —
		// keep it on loopback or an ops-only network, never the public
		// address.
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof, /debug/vars, /debug/costs, /debug/quality and /debug/cluster on this UNAUTHENTICATED ops-only address (e.g. localhost:6060; empty = disabled)")
		// Cluster mode: static membership over which a consistent-hash
		// ring routes every prepared-cache key to exactly one owner node;
		// non-owners transparently forward. Flags override the config
		// file's corresponding fields.
		clusterSelf    = flag.String("cluster-self", "", "this node's advertised base URL in cluster mode (e.g. http://10.0.0.1:8080)")
		clusterPeers   = flag.String("cluster-peers", "", "comma-separated peer base URLs; empty = single-node mode")
		clusterConfig  = flag.String("cluster-config", "", "JSON membership file {\"self\":..., \"peers\":[...], \"vnodes\":..., \"max_hops\":...}; flags override its fields")
		clusterVNodes  = flag.Int("cluster-vnodes", 0, "virtual nodes per member on the hash ring (0 = 64)")
		forwardTimeout = flag.Duration("forward-timeout", 0, "per-request timeout when forwarding to a peer (0 = 30s)")
		probeInterval  = flag.Duration("probe-interval", 5*time.Second, "background peer health-probe interval (0 = breakers driven by forwarding outcomes only)")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight (local and forwarded) requests on SIGTERM")
		// Admission control: shed excess load with 429 + Retry-After
		// instead of queueing unboundedly.
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing data-plane requests (0 = unlimited)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant sustained request rate in req/s, keyed by the X-CDB-Tenant header (0 = no quotas)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst capacity (0 = ceil(tenant-rate))")
	)
	flag.Parse()

	clusterCfg, err := buildClusterConfig(*clusterConfig, *clusterSelf, *clusterPeers, *clusterVNodes, *forwardTimeout, *probeInterval)
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(server.Config{
		PoolSize:       *pool,
		CacheSize:      *cache,
		DefaultWorkers: *workers,
		MaxSamples:     *maxN,
		SlowQuery:      *slowQuery,
		AuditInterval:  *auditInterval,
		Cluster:        clusterCfg,
		Admission: cluster.AdmissionConfig{
			MaxInFlight: *maxInFlight,
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
		},
	})
	defer srv.Close()
	if clusterCfg.Enabled() {
		log.Printf("cluster mode: self=%s peers=%s", clusterCfg.Self, strings.Join(clusterCfg.Peers, ","))
	}

	for _, path := range flag.Args() {
		preload(srv, path)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener on %s (unauthenticated: pprof, expvar, cost tables)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful drain: flip readiness first (load balancers and peers see
	// not-ready and stop sending), then let http.Server.Shutdown wait for
	// in-flight requests — local computations and forwarded exchanges
	// alike, since the forwarding client propagates request contexts —
	// up to -drain-timeout.
	log.Printf("draining (timeout %v)", *drainTimeout)
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
}

// buildClusterConfig merges the -cluster-config file (if any) with the
// cluster flags (flags win), applies the tunables and validates the
// result.
func buildClusterConfig(path, self, peers string, vnodes int, forwardTimeout, probeInterval time.Duration) (cluster.Config, error) {
	var cfg cluster.Config
	if path != "" {
		var err error
		cfg, err = cluster.LoadConfig(path)
		if err != nil {
			return cluster.Config{}, err
		}
	}
	if self != "" {
		cfg.Self = self
	}
	if p := cluster.ParsePeers(peers); len(p) > 0 {
		cfg.Peers = p
	}
	if vnodes > 0 {
		cfg.VNodes = vnodes
	}
	cfg.ForwardTimeout = forwardTimeout
	if cfg.Enabled() {
		cfg.ProbeInterval = probeInterval
	}
	if err := cfg.Validate(); err != nil {
		return cluster.Config{}, err
	}
	return cfg, nil
}

// preload registers a program file under its base name.
func preload(srv *server.Server, path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("preload %s: %v", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	entry, _, err := srv.Registry().Register(name, string(src))
	if err != nil {
		log.Fatalf("preload %s: %v", path, err)
	}
	log.Printf("preloaded database %q (%d relations, %d queries)",
		entry.ID, len(entry.DB.Names), len(entry.DB.Queries))
}
