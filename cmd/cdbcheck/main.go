// Command cdbcheck runs the repository's invariant analyzers (see
// internal/analysis) over Go packages. It speaks two protocols:
//
//	cdbcheck ./...            standalone: load the module, check every
//	                          package, print findings, exit 2 if any
//	go vet -vettool=$(which cdbcheck) ./...
//	                          vettool: the go command invokes cdbcheck
//	                          once per package with a vet config file;
//	                          cdbcheck type-checks from the supplied
//	                          export data and reports findings
//
// Both modes honor //cdbcheck:ignore suppression directives and skip
// _test.go files (the invariants are production-code contracts).
//
// Exit codes follow go vet's unitchecker: 0 clean, 1 tool error,
// 2 diagnostics reported.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]

	// The go command probes its vettool before use: -V=full must print
	// a version line and -flags the tool's analyzer flags (we have
	// none). Both protocols are documented in cmd/go/internal/vet.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads the module around the working directory and runs
// the suite over the requested packages ("./..." by default).
func standalone(patterns []string) int {
	loader, err := load.New(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdbcheck:", err)
		return 1
	}
	var pkgs []*load.Package
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" {
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdbcheck:", err)
				return 1
			}
			pkgs = append(pkgs, all...)
			continue
		}
		pkg, err := loader.LoadPackage(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdbcheck:", err)
			return 1
		}
		pkgs = append(pkgs, pkg)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, suite.All)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdbcheck: %s: %v\n", pkg.Path, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 2
		}
	}
	return exit
}
