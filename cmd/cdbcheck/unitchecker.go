package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// vetConfig is the JSON the go command writes for each vetted package
// (the x/tools unitchecker wire format; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite over one package described by a vet config
// file and returns the process exit code.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdbcheck:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cdbcheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command expects a facts file ("vetx") for every unit, even
	// from fact-free tools like this one.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cdbcheck:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: the go command only wants facts, and we have
		// none to compute.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "cdbcheck:", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// built: ImportMap canonicalizes the path, PackageFile locates the
	// archive.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: version.Lang(cfg.GoVersion),
		Error:     func(error) {}, // collect nothing; Check's return is enough
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cdbcheck: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &load.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := analysis.Run(pkg, suite.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdbcheck: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion implements -V=full: a stable line containing the tool
// name, "version", and a content hash the go command caches on.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(progname), h.Sum(nil))
}
