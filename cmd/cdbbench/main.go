// Command cdbbench runs the reproduction experiment suite E1–E12 (see
// DESIGN.md §5 for the mapping from paper claims to experiments) and
// prints the measured tables. With -markdown it emits the tables in the
// format EXPERIMENTS.md records.
//
// Usage:
//
//	cdbbench                 # every experiment, full size
//	cdbbench -run E7,E9      # selected experiments
//	cdbbench -quick          # reduced workloads
//	cdbbench -markdown       # markdown tables
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbbench: ")
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = flag.Bool("quick", false, "reduced workloads")
		seed     = flag.Uint64("seed", 2006, "random seed")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
	)
	flag.Parse()
	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, id := range ids {
		tab, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			log.Printf("%s: %v", id, err)
			failed++
			continue
		}
		if *markdown {
			tab.Markdown(os.Stdout)
		} else {
			tab.Render(os.Stdout)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cdbbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
