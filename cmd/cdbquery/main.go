// Command cdbquery evaluates a query of a constraint database program,
// either symbolically (Fourier–Motzkin quantifier elimination, the
// classical baseline) or approximately (sampling plans and hull
// reconstruction, the paper's contribution), through the cdb.DB handle.
// Ctrl-C cancels an in-flight sampling evaluation mid-walk.
//
// Usage:
//
//	cdbquery -file db.cdb -query Q -mode symbolic
//	cdbquery -file db.cdb -query Q -mode volume
//	cdbquery -file db.cdb -query Q -mode reconstruct -n 500
//	cdbquery -file db.cdb -query Q -explain
//	cdbquery -file db.cdb -query Q -audit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	cdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbquery: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		qName   = flag.String("query", "", "query name (required)")
		mode    = flag.String("mode", "symbolic", "symbolic | plan | volume | reconstruct")
		n       = flag.Int("n", 400, "samples per disjunct for reconstruction")
		seed    = flag.Uint64("seed", 42, "random seed")
		explain = flag.Bool("explain", false, "print the normalized (canonical) sampling plan, its cache key and per-disjunct cache status before evaluating; with -mode volume the evaluation runs afterwards and a second report shows the warmed cache")
		trace   = flag.Bool("trace", false, "trace the evaluation and print the span tree (per-stage durations and counters) to stderr")
		audit   = flag.Bool("audit", false, "warm the query's sampler, run one quality-audit round (empirical cell masses and disjunct shares vs exact symbolic volumes) and print the verdicts and quality report")
	)
	flag.Parse()
	if *file == "" || *qName == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cdb.Open(string(src))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	q, ok := db.Database().Query(*qName)
	if !ok {
		log.Fatalf("query %q not found", *qName)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *trace {
		var root *cdb.Span
		ctx, root = cdb.StartTrace(ctx, "cdbquery")
		defer func() {
			root.End()
			fmt.Fprint(os.Stderr, root.String())
		}()
	}
	e := db.Engine(ctx, *seed)

	if *audit {
		// Warm the sampler (registering it with the auditor), run one
		// on-demand audit sweep, and print the verdicts plus the
		// accumulated quality report.
		expr := db.Rel(*qName)
		if _, err := expr.SampleNSeeded(ctx, 512, *seed); err != nil {
			log.Fatal(err)
		}
		events, err := db.AuditOnce(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(events) == 0 {
			fmt.Println("no auditable entries (target outside the exact-oracle fragment?)")
		}
		for _, ev := range events {
			fmt.Printf("audit %-4s check=%-6s stat=%.3f threshold=%.3f samples=%d %s\n",
				ev.Outcome, ev.Check, ev.Stat, ev.Threshold, ev.Samples, ev.Detail)
		}
		rep, err := expr.Explain(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if q, ok := db.QualityReport(rep.CacheKey); ok {
			out, err := json.MarshalIndent(q, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(out))
		}
		return
	}

	if *explain {
		rep, err := db.Rel(*qName).Explain(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
		if *mode != "volume" {
			return
		}
		// Evaluate through the expression surface, then re-explain: the
		// second report shows the now-warm (or negative) cache entry.
		v, err := db.Rel(*qName).Volume(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g\n", *qName, v)
		rep, err = db.Rel(*qName).Explain(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after evaluation: cache %s\n", rep.Cache)
		return
	}

	switch *mode {
	case "plan":
		plan, err := e.NewPlan(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan.Describe())
	case "symbolic":
		// Evaluate through the expression surface: the eliminated DNF is
		// cached in the handle's prepared-symbolic LRU (keyed by the
		// canonical plan hash), and — unlike the sampling modes — the
		// full first-order algebra (minus of a projection, division /
		// forall) is accepted.
		rel, err := db.Rel(*qName).EvalSymbolic(ctx)
		if err != nil {
			log.Fatal(err)
		}
		rel.Name = *qName
		fmt.Println(rel.String())
		fmt.Println(rel.Source())
		fmt.Printf("-- %d tuple(s), description size %d\n", len(rel.Tuples), rel.Size())
	case "volume":
		v, err := e.EstimateVolume(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g\n", *qName, v)
	case "reconstruct":
		est, err := e.Reconstruct(q, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reconstruction of %s: %d hull(s), %d points total\n",
			*qName, len(est.Hulls), est.VertexCount())
		for i, h := range est.Hulls {
			vs := h.Vertices()
			fmt.Printf("hull %d: %d extreme points\n", i, len(vs))
			for _, v := range vs {
				fmt.Printf("  %v\n", v)
			}
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
