// Command cdbvol estimates (or exactly computes) the volume of a
// relation or query result in a constraint database program.
//
// Usage:
//
//	cdbvol -file db.cdb -rel S             # randomized relative estimate
//	cdbvol -file db.cdb -rel S -exact      # exact (fixed-dimension) volume
//	cdbvol -file db.cdb -query Q           # sampling-based query volume
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	cdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbvol: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		relName = flag.String("rel", "", "relation to measure")
		qName   = flag.String("query", "", "query to measure (sampling plan)")
		exact   = flag.Bool("exact", false, "use the exact fixed-dimension algorithm (Lemma 3.1)")
		seed    = flag.Uint64("seed", 42, "random seed")
		eps     = flag.Float64("eps", 0.25, "relative error ε")
		delta   = flag.Float64("delta", 0.1, "failure probability δ")
	)
	flag.Parse()
	if *file == "" || (*relName == "" && *qName == "") {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cdb.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	opts := cdb.DefaultOptions()
	opts.Params.Eps = *eps
	opts.Params.Delta = *delta

	switch {
	case *relName != "" && *exact:
		rel, ok := db.Relation(*relName)
		if !ok {
			log.Fatalf("relation %q not found", *relName)
		}
		v, err := cdb.ExactVolume(rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact volume(%s) = %.9g\n", *relName, v)
	case *relName != "":
		rel, ok := db.Relation(*relName)
		if !ok {
			log.Fatalf("relation %q not found", *relName)
		}
		v, err := cdb.EstimateVolume(rel, *seed, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g  (relative ε=%g, δ=%g)\n", *relName, v, *eps, *delta)
	default:
		q, ok := db.Query(*qName)
		if !ok {
			log.Fatalf("query %q not found", *qName)
		}
		e := cdb.NewEngine(db.Schema, opts, *seed)
		v, err := e.EstimateVolume(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g  (sampling plan, ε=%g, δ=%g)\n", *qName, v, *eps, *delta)
	}
}
