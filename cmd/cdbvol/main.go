// Command cdbvol estimates (or exactly computes) the volume of a
// relation or query result in a constraint database program, through
// the cdb.DB handle: estimates come from the handle's warm prepared
// geometry (single-tuple relations pay no walker at all), and Ctrl-C
// cancels an in-flight estimate mid-walk.
//
// Usage:
//
//	cdbvol -file db.cdb -rel S             # randomized relative estimate
//	cdbvol -file db.cdb -rel S -exact      # exact (fixed-dimension) volume
//	cdbvol -file db.cdb -query Q           # sampling-based query volume
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	cdb "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbvol: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		relName = flag.String("rel", "", "relation to measure")
		qName   = flag.String("query", "", "query to measure (sampling plan)")
		exact   = flag.Bool("exact", false, "use the exact fixed-dimension algorithm (Lemma 3.1)")
		seed    = flag.Uint64("seed", 42, "random seed (query volumes)")
		eps     = flag.Float64("eps", 0.25, "relative error ε")
		delta   = flag.Float64("delta", 0.1, "failure probability δ")
	)
	flag.Parse()
	if *file == "" || (*relName == "" && *qName == "") {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	params := cdb.Params{Gamma: 0.2, Eps: *eps, Delta: *delta}
	db, err := cdb.Open(string(src), cdb.WithParams(params), cdb.WithPrepSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *relName != "" && *exact:
		rel, ok := db.Database().Relation(*relName)
		if !ok {
			log.Fatalf("relation %q not found", *relName)
		}
		v, err := cdb.ExactVolume(rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exact volume(%s) = %.9g\n", *relName, v)
	case *relName != "":
		v, err := db.Volume(ctx, *relName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g  (relative ε=%g, δ=%g)\n", *relName, v, *eps, *delta)
	default:
		v, err := db.QueryVolume(ctx, *qName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume(%s) ≈ %.6g  (sampling plan, ε=%g, δ=%g)\n", *qName, v, *eps, *delta)
	}
}
