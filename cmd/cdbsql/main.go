// Command cdbsql runs CDB-SQL statements against a constraint database
// program through the cdb.DB handle — the same parse → algebra →
// canonical-plan pipeline the library, /v1/sql and /v1/expr share, so a
// statement warmed here is warm for every surface of one handle. The
// execution mode is inferred per statement: SAMPLE draws points (one
// line each), VOLUME(*) estimates measure, EXPLAIN [SYMBOLIC] prints
// the plan report, and a bare SELECT evaluates symbolically and prints
// the derived relation. Ctrl-C cancels an in-flight evaluation.
//
// Usage:
//
//	cdbsql -file db.cdb -e "SELECT * FROM S WHERE x + y <= 1 SAMPLE 5 SEED 1"
//	echo "SELECT VOLUME(*) FROM S; EXPLAIN SELECT * FROM S" | cdbsql -file db.cdb
//	cdbsql -file db.cdb -explain -e "SELECT * FROM S"
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	cdb "repro"
	sqldialect "repro/internal/sql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbsql: ")
	os.Exit(run())
}

func run() int {
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		stmts   = flag.String("e", "", "semicolon-separated CDB-SQL statement(s); reads stdin when omitted")
		explain = flag.Bool("explain", false, "prefix EXPLAIN to every statement: print the canonical plan, cache keys and per-disjunct residency instead of evaluating")
		trace   = flag.Bool("trace", false, "trace each statement and print its span tree (per-stage durations and counters) to stderr")
	)
	flag.Parse()
	if *file == "" {
		flag.Usage()
		return 2
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Print(err)
		return 1
	}
	db, err := cdb.Open(string(src))
	if err != nil {
		log.Print(err)
		return 1
	}
	defer db.Close()

	input := *stmts
	if input == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Print(err)
			return 1
		}
		input = string(data)
	}
	statements := sqldialect.SplitStatements(input)
	if len(statements) == 0 {
		log.Print("no statements (pass -e or pipe SQL on stdin)")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	code := 0
	for i, stmt := range statements {
		if *explain && !hasExplainPrefix(stmt) {
			stmt = "EXPLAIN " + stmt
		}
		if err := runStatement(ctx, db, stmt, *trace); err != nil {
			log.Printf("statement %d: %v", i+1, err)
			code = 1
		}
	}
	return code
}

func hasExplainPrefix(stmt string) bool {
	f := strings.Fields(stmt)
	return len(f) > 0 && strings.EqualFold(f[0], "EXPLAIN")
}

func runStatement(ctx context.Context, db *cdb.DB, stmt string, trace bool) error {
	if trace {
		var root *cdb.Span
		ctx, root = cdb.StartTrace(ctx, "cdbsql")
		defer func() {
			root.End()
			fmt.Fprint(os.Stderr, root.String())
		}()
	}
	res, err := db.ExecSQL(ctx, stmt)
	if err != nil {
		return err
	}
	switch res.Mode {
	case "sample":
		for _, p := range res.Points {
			for j, v := range p {
				if j > 0 {
					fmt.Print(" ")
				}
				fmt.Printf("%.6g", v)
			}
			fmt.Println()
		}
	case "volume":
		fmt.Printf("volume ≈ %.6g\n", res.Volume)
	case "explain":
		fmt.Print(res.Explain)
	case "relation":
		rel := res.Relation
		fmt.Println(rel.String())
		fmt.Println(rel.Source())
		fmt.Printf("-- %d tuple(s), description size %d\n", len(rel.Tuples), rel.Size())
	}
	return nil
}
