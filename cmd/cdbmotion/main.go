// Command cdbmotion works with moving-object constraint databases:
// trajectory fleets as unions of space-time prisms over (x, y, t),
// served through the cdb.DB handle — time slices and alibi
// preparations come from the handle's warm cache, and Ctrl-C cancels an
// in-flight estimate mid-walk.
//
// Usage:
//
//	cdbmotion -mode fleet -n 8 [-steps 4] [-extent 100] [-dt 10] [-vmax 2] [-seed 1] [-o fleet.cdb]
//	    Generate a random fleet and write it as a registrable program.
//
//	cdbmotion -mode slice -file fleet.cdb -rel obj0 -t0 17.5 [-samples 100] [-seed 42] [-volume]
//	    Sample positions from the time slice t = t0 (one tab-separated
//	    point per line), or estimate the snapshot's area with -volume.
//
//	cdbmotion -mode alibi -file fleet.cdb -a obj0 -b obj1 [-t0 0] [-t1 40] [-seed 42] [-k 1]
//	    Answer "could a and b have met during [t0, t1]?" by sampling and
//	    by Fourier–Motzkin elimination, cross-checked.
//
// Every mode accepts -trace, which prints the request's span tree
// (per-stage durations and counters) to stderr, like cdbquery -trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	cdb "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/spacetime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbmotion: ")
	var (
		mode = flag.String("mode", "", "fleet | slice | alibi (required)")
		seed = flag.Uint64("seed", 42, "random seed")

		// fleet flags
		n      = flag.Int("n", 8, "fleet: number of objects")
		steps  = flag.Int("steps", 4, "fleet: legs per trajectory")
		extent = flag.Float64("extent", 100, "fleet: positions stay in [0, extent]^2")
		dt     = flag.Float64("dt", 10, "fleet: seconds between observations")
		vmax   = flag.Float64("vmax", 0, "fleet: speed bound (0 = derived from extent)")
		facets = flag.Int("facets", 0, "fleet: speed-polygon facets (0 = default 8)")
		out    = flag.String("o", "", "fleet: output file (default stdout)")

		// slice/alibi flags
		file    = flag.String("file", "", "constraint database program")
		relName = flag.String("rel", "", "slice: relation to slice")
		t0      = flag.Float64("t0", 0, "slice: slice time; alibi: window start")
		t1      = flag.Float64("t1", 0, "alibi: window end")
		count   = flag.Int("samples", 100, "slice: number of sampled positions")
		volume  = flag.Bool("volume", false, "slice: print the snapshot area instead of samples")
		aName   = flag.String("a", "", "alibi: first object")
		bName   = flag.String("b", "", "alibi: second object")
		medianK = flag.Int("k", 1, "alibi: median-of-k volume amplification")

		trace = flag.Bool("trace", false, "trace the evaluation and print the span tree (per-stage durations and counters) to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *trace {
		var root *cdb.Span
		ctx, root = cdb.StartTrace(ctx, "cdbmotion")
		defer func() {
			root.End()
			fmt.Fprint(os.Stderr, root.String())
		}()
	}

	switch *mode {
	case "fleet":
		cfg := dataset.TrajectoryConfig{
			Steps: *steps, Extent: *extent, DT: *dt, VMax: *vmax, Facets: *facets,
		}
		prog := dataset.FleetProgram(dataset.Fleet(rng.New(*seed), *n, cfg))
		if *out == "" {
			fmt.Print(prog)
			return
		}
		if err := os.WriteFile(*out, []byte(prog), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d objects to %s", *n, *out)

	case "slice":
		if *relName == "" {
			log.Fatal("missing -rel")
		}
		db := openDB(*file)
		defer db.Close()
		// Stage spans are attached by hand: the spacetime prepare path
		// does not thread a context, so the tree is built around the
		// calls (a nil parent span makes every StartChild/End a no-op).
		sp := cdb.SpanFromContext(ctx).StartChild("slice.prepare")
		ps, err := db.TimeSlice(ctx, *relName, *t0)
		sp.End()
		if err != nil {
			log.Fatal(err)
		}
		if *volume {
			sp := cdb.SpanFromContext(ctx).StartChild("slice.volume")
			v, err := ps.VolumeCtx(ctx, *seed)
			sp.End()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("area(%s @ t=%g) ≈ %.6g\n", *relName, *t0, v)
			return
		}
		sp = cdb.SpanFromContext(ctx).StartChild("slice.sample")
		sp.Set("n", int64(*count))
		defer sp.End()
		gen, err := ps.NewObservableCtx(ctx, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			x, err := gen.Sample()
			if err != nil {
				log.Fatalf("sample %d: %v", i, err)
			}
			parts := make([]string, len(x))
			for j, v := range x {
				parts[j] = fmt.Sprintf("%.6g", v)
			}
			fmt.Println(strings.Join(parts, "\t"))
		}

	case "alibi":
		if *aName == "" || *bName == "" {
			log.Fatal("alibi needs -a and -b")
		}
		db := openDB(*file)
		defer db.Close()
		// Flags left unset default to the union of both supports, so a
		// one-sided window (-t0 only, or -t1 only) does the right thing.
		t0Set, t1Set := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "t0":
				t0Set = true
			case "t1":
				t1Set = true
			}
		})
		lo, hi := *t0, *t1
		if !t0Set || !t1Set {
			alo, ahi, aok := db.TimeSupportOf(*aName)
			blo, bhi, bok := db.TimeSupportOf(*bName)
			if aok && bok {
				if !t0Set {
					lo = spacetime.SnapNoise(min(alo, blo))
				}
				if !t1Set {
					hi = spacetime.SnapNoise(max(ahi, bhi))
				}
			}
		}
		sp := cdb.SpanFromContext(ctx).StartChild("alibi.report")
		rep, err := db.AlibiSeeded(ctx, *aName, *bName, lo, hi, *seed, *medianK)
		sp.End()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REFUTED — the objects could not have met"
		if rep.Meet {
			verdict = "POSSIBLE — the objects could have met"
		}
		fmt.Printf("alibi(%s, %s) on [%g, %g]: %s\n", *aName, *bName, lo, hi, verdict)
		fmt.Printf("  sampling: meet=%v meeting-volume≈%.6g (ε=%.2g, confidence %.0f%%)\n",
			rep.Meet, rep.Volume, rep.RelErr, 100*rep.Confidence)
		fmt.Printf("  symbolic: meet=%v", rep.SymbolicMeet)
		if len(rep.MeetTimes) > 0 {
			ivs := make([]string, len(rep.MeetTimes))
			for i, iv := range rep.MeetTimes {
				ivs[i] = fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi)
			}
			fmt.Printf(" meeting times %s", strings.Join(ivs, " ∪ "))
		}
		fmt.Println()
		fmt.Printf("  cross-check: consistent=%v\n", rep.Consistent)
		if !rep.Consistent {
			os.Exit(1)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// openDB opens a handle over a program file.
func openDB(file string) *cdb.DB {
	if file == "" {
		log.Fatal("missing -file")
	}
	src, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cdb.Open(string(src))
	if err != nil {
		log.Fatal(err)
	}
	return db
}
