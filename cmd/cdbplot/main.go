// Command cdbplot renders a 2-D relation of a constraint database as an
// SVG picture, optionally overlaying almost-uniform samples and the
// convex-hull reconstruction — a visual check of the paper's generators
// in the GIS setting its introduction motivates.
//
// Usage:
//
//	cdbplot -file db.cdb -rel S -o out.svg
//	cdbplot -file db.cdb -rel S -samples 500 -hull -o out.svg
package main

import (
	"flag"
	"log"
	"os"

	cdb "repro"
	"repro/internal/geom"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cdbplot: ")
	var (
		file    = flag.String("file", "", "constraint database program (required)")
		relName = flag.String("rel", "", "2-D relation to draw (required)")
		out     = flag.String("o", "plot.svg", "output SVG path")
		samples = flag.Int("samples", 0, "overlay N almost-uniform samples")
		hull    = flag.Bool("hull", false, "overlay the hull of the samples")
		width   = flag.Int("w", 640, "canvas width in pixels")
		height  = flag.Int("h", 640, "canvas height in pixels")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()
	if *file == "" || *relName == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*file)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cdb.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	rel, ok := db.Relation(*relName)
	if !ok {
		log.Fatalf("relation %q not found (have %v)", *relName, db.Names)
	}
	if rel.Arity() != 2 {
		log.Fatalf("cdbplot draws 2-D relations; %s has arity %d", *relName, rel.Arity())
	}
	lo, hi, okBox := rel.BoundingBox()
	if !okBox {
		log.Fatalf("relation %s is empty or unbounded", *relName)
	}
	// Pad the viewport by 5%.
	for j := range lo {
		pad := 0.05 * (hi[j] - lo[j])
		lo[j] -= pad
		hi[j] += pad
	}
	c := viz.NewCanvas(*width, *height, lo, hi)
	if err := viz.DrawRelation(c, rel, viz.Palette[0], "#333333", 0.35); err != nil {
		log.Fatal(err)
	}

	if *samples > 0 {
		gen, err := cdb.NewSampler(rel, *seed, cdb.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		pts := make([]cdb.Vector, 0, *samples)
		for i := 0; i < *samples; i++ {
			p, err := gen.Sample()
			if err != nil {
				log.Fatalf("sample %d: %v", i, err)
			}
			pts = append(pts, p)
			c.Point(p, 1.5, viz.Palette[3])
		}
		if *hull {
			hv := geom.Hull2D(pts)
			for i := range hv {
				c.Line(hv[i], hv[(i+1)%len(hv)], viz.Palette[2], 2)
			}
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if _, err := c.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
