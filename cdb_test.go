package cdb_test

import (
	"math"
	"testing"

	cdb "repro"
)

func TestQuickstartFlow(t *testing.T) {
	db, err := cdb.Parse(`rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := db.Relation("S")
	if !ok {
		t.Fatal("S missing")
	}
	gen, err := cdb.NewSampler(s, 42, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := gen.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(p) {
		t.Errorf("sample %v outside S", p)
	}
	v, err := gen.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.3 || v > 0.8 {
		t.Errorf("triangle area estimate = %g, want ~0.5", v)
	}
}

func TestExactVsEstimated(t *testing.T) {
	rel := cdb.MustRelation("R", []string{"x", "y"},
		cdb.Cube(2, 0, 2), cdb.Cube(2, 1, 3))
	exact, err := cdb.ExactVolume(rel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-7) > 1e-7 {
		t.Fatalf("exact = %g, want 7", exact)
	}
	est, err := cdb.EstimateVolume(rel, 7, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if est < 4.5 || est > 10.5 {
		t.Errorf("estimate = %g, want ~7", est)
	}
}

func TestEngineThroughFacade(t *testing.T) {
	db, err := cdb.Parse(`
		rel Land(x, y) := { 0 <= x <= 10, 0 <= y <= 10 };
		query Strip(x) := exists y. (Land(x, y) & y <= 1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	e := cdb.NewEngine(db.Schema, cdb.DefaultOptions(), 11)
	q, _ := db.Query("Strip")
	v, err := e.EstimateVolume(q)
	if err != nil {
		t.Fatal(err)
	}
	if v < 6 || v > 15 {
		t.Errorf("strip length = %g, want ~10", v)
	}
	sym, err := e.EvalSymbolic(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sym.Contains(cdb.Vector{5}) || sym.Contains(cdb.Vector{11}) {
		t.Error("symbolic result wrong")
	}
}

func TestReconstructThroughFacade(t *testing.T) {
	db, err := cdb.Parse(`rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.Relation("S")
	gen, err := cdb.NewSampler(s, 3, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := cdb.ReconstructConvex(gen, 500)
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Area2D(); a < 0.85 || a > 1.0001 {
		t.Errorf("hull area = %g, want ~1", a)
	}
}

func TestFaithfulOptionsGridWalk(t *testing.T) {
	db, err := cdb.Parse(`rel S(x) := { 0 <= x <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.Relation("S")
	opts := cdb.FaithfulOptions()
	opts.WalkSteps = 500
	gen, err := cdb.NewSampler(s, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p, err := gen.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !s.Contains(p) {
			t.Fatalf("grid-walk sample %v escaped", p)
		}
	}
}

func TestProjectAndReconstructFacade(t *testing.T) {
	// Simplex in R^3 onto (x,y): triangle of area 1/2.
	db, err := cdb.Parse(`rel S(x, y, z) := { x >= 0, y >= 0, z >= 0, x + y + z <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.Relation("S")
	// Build the polytope from the single tuple.
	if len(s.Tuples) != 1 {
		t.Fatal("expected one tuple")
	}
	poly := polytopeFromTuple(s.Tuples[0])
	h, err := cdb.ProjectAndReconstruct(poly, []int{0, 1}, 300, 9, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a := h.Area2D(); math.Abs(a-0.5) > 0.1 {
		t.Errorf("projected area = %g, want ~0.5", a)
	}
}

// polytopeFromTuple mirrors the internal conversion for facade tests.
func polytopeFromTuple(t cdb.Tuple) *cdb.Polytope {
	a, b := t.System()
	return &cdb.Polytope{A: a, B: b}
}
