package cdb_test

// Tests of the symbolic-evaluation terminal: hand-computed fixtures for
// the full first-order algebra (Minus of a projection, Div), prepared-
// symbolic cache sharing asserted through the handle's cache metrics,
// negative caching of provably empty results, and the differential
// fuzz harness comparing VolumeSymbolic (exact inclusion–exclusion over
// the eliminated DNF) against the Monte-Carlo Volume estimate.

import (
	"context"
	"math"
	"strings"
	"testing"

	cdb "repro"
)

const symbolicProgram = `
rel R(x)    := { 0 <= x <= 4 };
rel S(x, y) := { 1 <= x <= 2, 0 <= y <= 1 };
rel N(x, y) := { 0 <= x <= 3, 0 <= y <= 1, x + y <= 3 };
rel O(y)    := { 0 <= y <= 1 };
rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel B(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel C(x, y) := { 3 <= x <= 4, 0 <= y <= 1 };
`

func openSymbolic(t *testing.T) *cdb.DB {
	t.Helper()
	db, err := cdb.Open(symbolicProgram)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestEvalSymbolicMinusOfProjection: R \ π_x(S) = [0,1) ∪ (2,4] — the
// acceptance fixture for negation under ∃, verified point-by-point
// against the hand-computed relation, open boundaries included.
func TestEvalSymbolicMinusOfProjection(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()
	expr := db.Rel("R").Minus(db.Rel("S").Project("x"))

	// The sampling terminals reject the fragment escape...
	if _, err := expr.Volume(ctx); err == nil {
		t.Error("sampling Volume of Minus-of-projection must be rejected")
	}
	// ...the symbolic terminal evaluates it.
	rel, err := expr.EvalSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := expr.Columns(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("columns = %v, want [x]", got)
	}
	for _, c := range []struct {
		x  float64
		in bool
	}{{0, true}, {0.99, true}, {1, false}, {1.5, false}, {2, false}, {2.01, true}, {4, true}, {4.1, false}} {
		if rel.Contains(cdb.Vector{c.x}) != c.in {
			t.Errorf("x=%g: contains = %v, want %v (rel %s)", c.x, !c.in, c.in, rel)
		}
	}
	v, err := expr.VolumeSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-3) > 1e-6 {
		t.Errorf("exact volume = %g, want 3", v)
	}
	// Source() round-trips through the parser to the same set.
	back, err := cdb.ParseRelation(strings.TrimPrefix(rel.Source(), "rel "), nil)
	if err != nil {
		t.Fatalf("source %q does not parse: %v", rel.Source(), err)
	}
	for _, x := range []float64{0.5, 1, 1.5, 2, 3} {
		if back.Contains(cdb.Vector{x}) != rel.Contains(cdb.Vector{x}) {
			t.Errorf("source round-trip changed membership at x=%g", x)
		}
	}
}

// TestEvalSymbolicDiv: N ÷ O = {x : ∀y∈[0,1], (x,y) ∈ N} = [0,2] — the
// acceptance fixture for the universal combinator.
func TestEvalSymbolicDiv(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()
	expr := db.Rel("N").Div(db.Rel("O"))

	if _, err := expr.SampleN(ctx, 1); err == nil {
		t.Error("sampling a Div expression must be rejected")
	}
	rel, err := expr.EvalSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		x  float64
		in bool
	}{{-0.5, false}, {0, true}, {1, true}, {2, true}, {2.1, false}, {3, false}} {
		if rel.Contains(cdb.Vector{c.x}) != c.in {
			t.Errorf("x=%g: contains = %v, want %v (rel %s)", c.x, !c.in, c.in, rel)
		}
	}
	v, err := expr.VolumeSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("exact volume = %g, want 2", v)
	}
}

// TestEvalSymbolicInFragment: an in-fragment union evaluates through
// the canonical plan and VolumeSymbolic returns the exact area.
func TestEvalSymbolicInFragment(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()
	// A ∪ B: [0,2] x [0,1] with overlap — exact area 2.
	v, err := db.Rel("A").Union(db.Rel("B")).VolumeSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-2) > 1e-6 {
		t.Errorf("exact union volume = %g, want 2", v)
	}
	// Projection through the plan path: π_x(S) = [1, 2], length 1.
	v, err = db.Rel("S").Project("x").VolumeSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-6 {
		t.Errorf("exact projection volume = %g, want 1", v)
	}
}

// TestEvalSymbolicCacheReplay: replays hit the prepared-symbolic cache
// — the hit counter increases and structurally equal expressions built
// in different operand orders share one entry.
func TestEvalSymbolicCacheReplay(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()

	e1 := db.Rel("A").Intersect(db.Rel("B"))
	e2 := db.Rel("B").Intersect(db.Rel("A")) // operand-permuted twin
	before := db.CacheStats()
	if _, err := e1.EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	mid := db.CacheStats()
	if mid.Misses != before.Misses+1 {
		t.Errorf("cold EvalSymbolic: misses %d -> %d, want one build", before.Misses, mid.Misses)
	}
	if _, err := e2.EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Hits != mid.Hits+1 || after.Misses != mid.Misses {
		t.Errorf("permuted replay: hits %d -> %d, misses %d -> %d, want a pure cache hit",
			mid.Hits, after.Hits, mid.Misses, after.Misses)
	}

	// Full-FO expressions replay through their formula-hash key too.
	div := db.Rel("N").Div(db.Rel("O"))
	if _, err := div.EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	h0 := db.CacheStats().Hits
	if _, err := db.Rel("N").Div(db.Rel("O")).EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	if h := db.CacheStats().Hits; h != h0+1 {
		t.Errorf("full-FO replay: hits %d -> %d, want one hit", h0, h)
	}
}

// TestEvalSymbolicEmptyNegative: a provably empty difference returns a
// relation with no tuples, volume 0, and replays as a negative entry.
func TestEvalSymbolicEmptyNegative(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()
	empty := db.Rel("A").Minus(db.Rel("A"))
	rel, err := empty.EvalSymbolic(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 0 {
		t.Fatalf("A \\ A should have no tuples, got %s", rel)
	}
	v, err := empty.VolumeSymbolic(ctx)
	if err != nil || v != 0 {
		t.Errorf("empty VolumeSymbolic = %g, %v; want 0, nil", v, err)
	}
	h0 := db.CacheStats().Hits
	if _, err := db.Rel("A").Minus(db.Rel("A")).EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	if h := db.CacheStats().Hits; h != h0+1 {
		t.Errorf("negative replay: hits %d -> %d, want one hit", h0, h)
	}
}

// TestExplainSymbolicResidency: Explain reports the symbolic cache
// residency — "miss" cold, "hit" after EvalSymbolic — and renders a
// symbolic-only report for full-FO expressions instead of erroring.
func TestExplainSymbolicResidency(t *testing.T) {
	db := openSymbolic(t)
	ctx := context.Background()

	expr := db.Rel("A").Intersect(db.Rel("B"))
	rep, err := expr.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Symbolic != "miss" || rep.SymbolicOnly {
		t.Errorf("cold in-fragment report: symbolic %q, symbolicOnly %v", rep.Symbolic, rep.SymbolicOnly)
	}
	if _, err := expr.EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	if rep, err = expr.Explain(ctx); err != nil || rep.Symbolic != "hit" {
		t.Errorf("warm report: symbolic %q (err %v), want hit", rep.Symbolic, err)
	}

	div := db.Rel("N").Div(db.Rel("O"))
	rep, err = div.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SymbolicOnly || rep.Symbolic != "miss" {
		t.Errorf("full-FO report: symbolicOnly %v, symbolic %q", rep.SymbolicOnly, rep.Symbolic)
	}
	if _, err := div.EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	if rep, err = div.Explain(ctx); err != nil || rep.Symbolic != "hit" {
		t.Errorf("warm full-FO report: symbolic %q (err %v), want hit", rep.Symbolic, err)
	}
}

// FuzzSymbolicVsSampling: for random quantifier-free-able expressions,
// the exact VolumeSymbolic (eliminated DNF + inclusion–exclusion) and
// the Monte-Carlo Volume estimate must agree within the estimator's
// tolerance — the differential-testing oracle that generalizes the
// 24-pair alibi agreement suite to arbitrary expressions.
func FuzzSymbolicVsSampling(f *testing.F) {
	f.Add(0.0, 1.0, 0.5, 2.0, 0.25)
	f.Add(-1.0, 0.5, 0.0, 1.0, 0.1)
	f.Add(0.0, 4.0, 3.0, 4.0, 2.0)
	f.Fuzz(func(t *testing.T, aLo, aHi, bLo, bHi, cut float64) {
		if !(aLo < aHi && bLo < bHi) || aHi-aLo > 100 || bHi-bLo > 100 ||
			math.Abs(aLo) > 100 || math.Abs(bLo) > 100 || math.Abs(cut) > 100 {
			t.Skip()
		}
		db, err := cdb.OpenDatabase(mustAlgebraDB(t, aLo, aHi, bLo, bHi))
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		ctx := context.Background()
		expr := db.Rel("FA").Union(db.Rel("FB")).
			Where(cdb.NewAtom(cdb.Vector{1, 1}, cut, false)) // x + y <= cut

		exact, err := expr.VolumeSymbolic(ctx)
		if err != nil {
			t.Fatalf("VolumeSymbolic: %v", err)
		}
		est, err := expr.Volume(ctx)
		if err != nil {
			t.Fatalf("Volume: %v", err)
		}
		if exact == 0 {
			if est != 0 {
				t.Fatalf("symbolically empty but sampled volume %g", est)
			}
			return
		}
		// Skip slivers where the (ε=0.25, δ=0.1) estimator's own noise
		// dominates; elsewhere demand agreement within a generous band.
		if exact < 0.05 {
			t.Skip()
		}
		if ratio := est / exact; ratio < 1/1.6 || ratio > 1.6 {
			t.Fatalf("sampled %g vs exact %g (ratio %g) for boxes [%g,%g] [%g,%g] cut %g",
				est, exact, ratio, aLo, aHi, bLo, bHi, cut)
		}
	})
}
