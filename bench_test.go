// Benchmark harness: one benchmark per reproduction experiment (E1–E12,
// see DESIGN.md §5 for the claim-to-experiment mapping) plus
// micro-benchmarks of the core primitives. The experiment benches run
// the quick configurations; `cmd/cdbbench` prints the full tables that
// EXPERIMENTS.md records.
package cdb_test

import (
	"fmt"
	"testing"

	cdb "repro"
	"repro/internal/constraint"
	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, experiments.Config{Seed: 2006 + uint64(i), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1RejectionVsWalk(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2GeneratorUniformity(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3VolumeEstimator(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4Union(b *testing.B)               { benchExperiment(b, "E4") }
func BenchmarkE5Intersection(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Difference(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7Projection(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8HullConvergence(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9ProjectionVsFM(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10SATIntersection(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11FixedDimension(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12PolynomialOracle(b *testing.B)   { benchExperiment(b, "E12") }

// ---- micro-benchmarks of the primitives ----

func BenchmarkSampleConvex(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rel := cdb.MustRelation("C", varNames(d), cdb.Cube(d, -1, 1))
			gen, err := cdb.NewSampler(rel, 1, cdb.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Sample(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSampleGridWalk(b *testing.B) {
	rel := cdb.MustRelation("C", varNames(2), cdb.Cube(2, 0, 1))
	opts := cdb.FaithfulOptions()
	opts.WalkSteps = 1000
	gen, err := cdb.NewSampler(rel, 1, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVolumeEstimate(b *testing.B) {
	for _, d := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rel := cdb.MustRelation("C", varNames(d), cdb.Cube(d, -1, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cdb.EstimateVolume(rel, uint64(i), cdb.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactVolume(b *testing.B) {
	for _, d := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rel := cdb.MustRelation("C", varNames(d),
				cdb.Cube(d, 0, 2), cdb.Cube(d, 1, 3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cdb.ExactVolume(rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParse(b *testing.B) {
	src := `
		rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
		rel T(x)    := exists y. S(x, y);
		query Q(x)  := T(x) & x >= 1/2;
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cdb.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFourierMotzkin(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("eliminate=%d", k), func(b *testing.B) {
			d := 2 + k
			rel := cdb.MustRelation("P", varNames(d), cdb.Cube(d, 0, 1))
			drop := make([]int, k)
			for i := range drop {
				drop[i] = 2 + i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				constraint.EliminateAll(rel, drop, constraint.EliminateOptions{})
			}
		})
	}
}

func BenchmarkMembership(b *testing.B) {
	rel := cdb.MustRelation("C", varNames(6),
		cdb.Cube(6, 0, 2), cdb.Cube(6, 1, 3))
	x := make(cdb.Vector, 6)
	for i := range x {
		x[i] = 1.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rel.Contains(x) {
			b.Fatal("membership broke")
		}
	}
}

func varNames(d int) []string {
	out := make([]string, d)
	for i := range out {
		out[i] = fmt.Sprintf("x%d", i)
	}
	return out
}
