package cdb

// White-box tests of the deprecated-wrapper rerouting: the package
// facade must share one warm prepared-sampler cache across calls (and
// across structurally equal relation values), while preparation
// problems and per-call Interrupt hooks fall back to the legacy cold
// path.

import (
	"testing"

	"repro/internal/query"
	"repro/internal/runtime"
)

// warmKeyFor computes the cache key the facade must use for rel: the
// canonical plan hash under the default runtime's registry entry —
// the identical key a DB handle computes for the same geometry.
func warmKeyFor(t *testing.T, rel *Relation, opts Options) (*runtime.Runtime, string) {
	t.Helper()
	rt, entry, ok := defaultRuntime()
	if !ok {
		t.Fatal("default runtime unavailable")
	}
	cp := query.Canonicalize(runtime.PlanOfRelation(rel))
	return rt, runtime.PlanKey(entry.ID, cp.Key, opts.CacheKey())
}

func hasKey(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

func TestDeprecatedWrappersShareWarmCache(t *testing.T) {
	// A shape unique to this test so cache assertions are immune to
	// other tests warming the process-global default runtime.
	rel := MustRelation("WarmShare", []string{"x", "y"},
		Box(Vector{0, 0}, Vector{0.75, 0.375}),
		Box(Vector{2, 2}, Vector{2.5, 2.25}))
	opts := DefaultOptions()
	rt, key := warmKeyFor(t, rel, opts)

	if hasKey(rt.Cache().Keys(), key) {
		t.Fatal("cache already warm before first facade call")
	}
	if _, err := NewSampler(rel, 1, opts); err != nil {
		t.Fatal(err)
	}
	if !hasKey(rt.Cache().Keys(), key) {
		t.Fatal("NewSampler did not warm the shared cache")
	}
	entries := len(rt.Cache().Keys())

	// Every other wrapper — and a structurally equal but distinct
	// relation value — must reuse the same entry: no growth.
	rel2 := MustRelation("WarmShare", []string{"x", "y"},
		Box(Vector{0, 0}, Vector{0.75, 0.375}),
		Box(Vector{2, 2}, Vector{2.5, 2.25}))
	if _, err := NewSampler(rel2, 2, opts); err != nil {
		t.Fatal(err)
	}
	if v, err := EstimateVolume(rel, 3, opts); err != nil || v <= 0 {
		t.Fatalf("EstimateVolume = %g, %v", v, err)
	}
	if v, err := MedianVolume(rel, 3, 4, opts); err != nil || v <= 0 {
		t.Fatalf("MedianVolume = %g, %v", v, err)
	}
	pts, err := SampleMany(rel, 32, 4, 5, opts)
	if err != nil || len(pts) != 32 {
		t.Fatalf("SampleMany = %d pts, %v", len(pts), err)
	}
	for _, p := range pts {
		if !rel.Contains(p) {
			t.Fatalf("sample %v outside the relation", p)
		}
	}
	if got := len(rt.Cache().Keys()); got != entries {
		t.Fatalf("cache grew from %d to %d entries: wrappers are not sharing the warm preparation", entries, got)
	}
}

func TestDeprecatedWrappersInterruptFallsBackCold(t *testing.T) {
	rel := MustRelation("WarmInterrupt", []string{"x"}, Cube(1, 0, 0.625))
	opts := DefaultOptions()
	opts.Interrupt = func() error { return nil }

	rt, key := warmKeyFor(t, rel, Options{Params: opts.Params, Walk: opts.Walk})
	gen, err := NewSampler(rel, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p, err := gen.Sample(); err != nil || !rel.Contains(p) {
		t.Fatalf("cold-path sample %v, %v", p, err)
	}
	// Cancellation hooks must never be baked into shared geometry.
	if hasKey(rt.Cache().Keys(), key) {
		t.Fatal("Interrupt-carrying call leaked into the shared warm cache")
	}
}

func TestDeprecatedWrappersErrorBehaviourUnchanged(t *testing.T) {
	empty := &Relation{Name: "Empty", Vars: []string{"x"}}
	if _, err := NewSampler(empty, 1, DefaultOptions()); err == nil {
		t.Fatal("NewSampler on an empty relation must keep erroring")
	}
	if _, err := EstimateVolume(empty, 1, DefaultOptions()); err == nil {
		t.Fatal("EstimateVolume on an empty relation must keep erroring")
	}
	rel := MustRelation("WarmBadK", []string{"x"}, Cube(1, 0, 1))
	if _, err := MedianVolume(rel, 0, 1, DefaultOptions()); err == nil {
		t.Fatal("MedianVolume must keep rejecting k <= 0")
	}
}
