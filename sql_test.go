package cdb_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	cdb "repro"
)

const sqlTestProgram = `
rel R(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel S(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel D(y) := { 0 <= y <= 0.25 };
query Q(x, y) := R(x, y) & x + y <= 1;
`

func openSQLDB(t *testing.T) *cdb.DB {
	t.Helper()
	db, err := cdb.Open(sqlTestProgram)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestSQLSharesCacheAcrossSurfaces is the acceptance test for the SQL
// front end: the same logical query issued via ExecSQL, DB.SQL, the
// db.Rel combinators and the named-query surface yields one canonical
// key and — after the first preparation — three cache hits on the
// shared prepared-sampler cache.
func TestSQLSharesCacheAcrossSurfaces(t *testing.T) {
	ctx := context.Background()
	db := openSQLDB(t)

	const stmt = "SELECT * FROM R WHERE x + y <= 1"

	// Surface 1: ExecSQL (cold — this prepares the sampler).
	base := db.CacheStats().Plan
	res, err := db.ExecSQL(ctx, stmt+" SAMPLE 8 SEED 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(res.Points))
	}
	after := db.CacheStats().Plan
	if after.Misses != base.Misses+1 {
		t.Fatalf("first ExecSQL: misses %d -> %d, want one cold build", base.Misses, after.Misses)
	}

	// Surface 2: DB.SQL returning an *Expr.
	e, err := db.SQL(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	sqlKey, err := e.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.CanonicalKey != sqlKey {
		t.Fatalf("ExecSQL key %s != DB.SQL key %s", res.CanonicalKey, sqlKey)
	}
	if _, err := e.SampleNSeeded(ctx, 8, 1); err != nil {
		t.Fatal(err)
	}

	// Surface 3: hand-built combinators.
	expr := db.Rel("R").Where(cdb.NewAtom(cdb.Vector{1, 1}, 1, false))
	exprKey, err := expr.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if exprKey != sqlKey {
		t.Fatalf("combinator key %s != SQL key %s", exprKey, sqlKey)
	}
	if _, err := expr.SampleNSeeded(ctx, 8, 1); err != nil {
		t.Fatal(err)
	}

	// Surface 4: the named query Q compiles to the same canonical plan.
	if _, err := db.SampleN(ctx, "Q", 8); err != nil {
		t.Fatal(err)
	}

	final := db.CacheStats().Plan
	if final.Misses != after.Misses {
		t.Fatalf("later surfaces rebuilt: misses %d -> %d", after.Misses, final.Misses)
	}
	if got := final.Hits - after.Hits; got != 3 {
		t.Fatalf("got %d cache hits after the first preparation, want 3", got)
	}
}

// TestExecSQLModes exercises every statement mode end to end.
func TestExecSQLModes(t *testing.T) {
	ctx := context.Background()
	db := openSQLDB(t)

	t.Run("volume", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "SELECT VOLUME(*) FROM R")
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != "volume" {
			t.Fatalf("mode = %q", res.Mode)
		}
		if res.Volume < 0.9 || res.Volume > 1.1 {
			t.Fatalf("volume of the unit square = %g, want ~1", res.Volume)
		}
	})

	t.Run("relation", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "SELECT x AS u FROM R WHERE y <= 0.5")
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != "relation" || res.Relation == nil {
			t.Fatalf("mode = %q, relation = %v", res.Mode, res.Relation)
		}
		if len(res.Relation.Vars) != 1 || res.Relation.Vars[0] != "u" {
			t.Fatalf("relation columns = %v, want [u]", res.Relation.Vars)
		}
		if src := res.Relation.Source(); !strings.Contains(src, "rel") {
			t.Fatalf("relation source not parseable-looking: %q", src)
		}
	})

	t.Run("explain", func(t *testing.T) {
		// Warm the sampler first so the report shows residency.
		if _, err := db.ExecSQL(ctx, "SELECT * FROM R SAMPLE 4"); err != nil {
			t.Fatal(err)
		}
		res, err := db.ExecSQL(ctx, "EXPLAIN SELECT * FROM R")
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Explain
		if res.Mode != "explain" || rep == nil {
			t.Fatalf("mode = %q, explain = %v", res.Mode, rep)
		}
		if rep.CanonicalKey == "" || rep.CanonicalKey != res.CanonicalKey {
			t.Fatalf("explain canonical key %q vs result %q", rep.CanonicalKey, res.CanonicalKey)
		}
		if rep.Cache != "hit" {
			t.Fatalf("warm expression reports cache %q, want hit", rep.Cache)
		}
		if len(rep.Disjuncts) == 0 {
			t.Fatal("explain report has no per-disjunct entries")
		}
		for _, d := range rep.Disjuncts {
			if d.Cache == "" || d.CanonicalKey == "" {
				t.Fatalf("disjunct missing cache residency: %+v", d)
			}
		}
	})

	t.Run("explain symbolic", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "EXPLAIN SYMBOLIC SELECT * FROM R WHERE x <= 0.5")
		if err != nil {
			t.Fatal(err)
		}
		if res.Explain == nil || !res.Explain.SymbolicOnly {
			t.Fatalf("EXPLAIN SYMBOLIC report = %+v, want SymbolicOnly", res.Explain)
		}
		if res.Explain.SymbolicKey == "" {
			t.Fatal("EXPLAIN SYMBOLIC report has no symbolic key")
		}
	})

	t.Run("full-FO division", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "SELECT * FROM R FOR ALL SELECT * FROM D")
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != "relation" || res.Relation == nil {
			t.Fatalf("mode = %q", res.Mode)
		}
		if len(res.Columns) != 1 || res.Columns[0] != "x" {
			t.Fatalf("division columns = %v, want [x]", res.Columns)
		}
		if res.CanonicalKey == "" {
			t.Fatal("full-FO statement has no canonical (symbolic) key")
		}
		// ∀y∈[0,0.25] (x,y)∈[0,1]² — every x in [0,1] qualifies.
		if res.Relation.IsEmpty() {
			t.Fatal("division result should not be empty")
		}
	})

	t.Run("full-FO volume", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "SELECT VOLUME(*) FROM (SELECT * FROM R FOR ALL SELECT * FROM D)")
		if err != nil {
			t.Fatal(err)
		}
		if res.Volume < 0.9 || res.Volume > 1.1 {
			t.Fatalf("division volume = %g, want ~1", res.Volume)
		}
	})

	t.Run("sample unseeded", func(t *testing.T) {
		res, err := db.ExecSQL(ctx, "SELECT * FROM R SAMPLE 5")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != 5 {
			t.Fatalf("got %d points", len(res.Points))
		}
		for _, p := range res.Points {
			if len(p) != 2 || p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
				t.Fatalf("point %v outside the unit square", p)
			}
		}
	})
}

// TestSQLSeededDeterminism: SEED pins the draw.
func TestSQLSeededDeterminism(t *testing.T) {
	ctx := context.Background()
	db := openSQLDB(t)
	a, err := db.ExecSQL(ctx, "SELECT * FROM R SAMPLE 16 SEED 42")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.ExecSQL(ctx, "SELECT * FROM R SAMPLE 16 SEED 42")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("draw lengths differ")
	}
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatalf("seeded draws differ at %d", i)
			}
		}
	}
}

// TestSQLErrorsSurface: parse and compile errors come back as
// positioned *SQLError values.
func TestSQLErrorsSurface(t *testing.T) {
	ctx := context.Background()
	db := openSQLDB(t)
	for _, stmt := range []string{
		"SELEC * FROM R",
		"SELECT * FROM Nope",
		"SELECT z FROM R",
		"SELECT * FROM R WHERE x <",
	} {
		_, err := db.ExecSQL(ctx, stmt)
		var serr *cdb.SQLError
		if !errors.As(err, &serr) {
			t.Errorf("ExecSQL(%q): error %T (%v) is not *SQLError", stmt, err, err)
			continue
		}
		if serr.Line < 1 || serr.Col < 1 {
			t.Errorf("ExecSQL(%q): unpositioned error %+v", stmt, serr)
		}
	}
	if _, err := db.SQL(ctx, "SELECT * FROM R WHERE"); err == nil {
		t.Fatal("DB.SQL accepted a malformed statement")
	}
}

// TestSQLBinderOrderSharesCache: two SQL statements that differ only in
// the order of two existential conjuncts land on one cache entry (the
// satellite cache-key tightening, observed from the SQL surface).
func TestSQLBinderOrderSharesCache(t *testing.T) {
	ctx := context.Background()
	db := openSQLDB(t)

	q1 := "(EXISTS (y) SELECT * FROM R) INTERSECT (EXISTS (y) SELECT * FROM S)"
	q2 := "(EXISTS (y) SELECT * FROM S) INTERSECT (EXISTS (y) SELECT * FROM R)"
	e1, err := db.SQL(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := db.SQL(ctx, q2)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := e1.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := e2.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("binder order split the cache key:\n%s\n%s", k1, k2)
	}
}
