package cdb

// Moving-object (spatio-temporal) facade: trajectories as unions of
// space-time prisms, the time-slice operator and alibi queries. See
// internal/spacetime for the model and cmd/cdbmotion for the CLI.

import (
	"repro/internal/spacetime"
)

// Observation is one timestamped position fix of a moving object.
type Observation = spacetime.Observation

// Trajectory is a moving object reconstructed from observations under a
// speed bound: a union of convex space-time prisms over (x_1..x_d, t).
// Trajectory.Relation() plugs into every sampler in this package.
type Trajectory = spacetime.Trajectory

// AlibiReport is the two-sided verdict of an alibi query: the sampling
// answer (meeting-volume estimate), the symbolic Fourier–Motzkin answer
// (exact meeting-time intervals) and their consistency flag.
type AlibiReport = spacetime.Report

// TimeInterval is a closed interval of timestamps.
type TimeInterval = spacetime.Interval

// NewTrajectory builds a trajectory from timestamped observations and a
// speed bound; facets tunes the polyhedral speed ball (0 = default).
func NewTrajectory(name string, vmax float64, facets int, obs ...Observation) (*Trajectory, error) {
	return spacetime.NewTrajectory(name, vmax, facets, obs...)
}

// TimeSlice fixes t = t0 in a space-time relation (time column = the
// column named "t", or the last one) and returns the convex snapshot
// relation over the spatial coordinates. The result has zero tuples
// when t0 lies outside the relation's support.
func TimeSlice(rel *Relation, t0 float64) (*Relation, error) {
	return spacetime.TimeSlice(rel, spacetime.TimeColumn(rel), t0)
}

// TimeWindow restricts a space-time relation to t ∈ [t0, t1], keeping
// the arity.
func TimeWindow(rel *Relation, t0, t1 float64) (*Relation, error) {
	return spacetime.TimeWindow(rel, spacetime.TimeColumn(rel), t0, t1)
}

// AlibiQuery answers "could the objects of relations a and b have met
// during [t0, t1]?" by sampling (meeting-volume estimate, median-of-k
// when k > 1) and symbolically by Fourier–Motzkin elimination,
// cross-checked in the returned report.
func AlibiQuery(a, b *Relation, t0, t1 float64, seed uint64, k int, opts Options) (*AlibiReport, error) {
	return spacetime.Alibi(a, b, spacetime.TimeColumn(a), t0, t1, seed, k, opts)
}

// TimeSupport returns the time extent [lo, hi] of a space-time
// relation; ok is false for empty or time-unbounded relations.
func TimeSupport(rel *Relation) (lo, hi float64, ok bool) {
	return spacetime.Support(rel, spacetime.TimeColumn(rel))
}
