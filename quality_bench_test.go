package cdb_test

// Quality-auditing overhead benchmarks: the audit layer must be nearly
// free on the warm draw path. With auditing off, the only extra work per
// draw batch is the quality tracker's cell/effort accounting; with the
// background auditor on, sweeps run concurrently off the serving path.
// Results and the overhead bound (<= 3%) are recorded in
// BENCH_quality.json.

import (
	"context"
	"testing"
	"time"

	cdb "repro"
)

const benchAuditProgram = `
rel U(x, y) := { 0 <= x <= 1, 0 <= y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
`

// BenchmarkWarmDrawAuditOff: warm union draws with no background
// auditor — the baseline the audit-on variant is compared against.
func BenchmarkWarmDrawAuditOff(b *testing.B) {
	db, err := cdb.Open(benchAuditProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := db.SampleN(ctx, "U", 64); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SampleNSeeded(ctx, "U", 64, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmDrawAuditOn: the same warm draws while the background
// auditor sweeps every 250ms — a production-style cadence. One audit
// round costs ~2ms (BenchmarkAuditorRound), so the steady-state duty
// cycle stolen from the serving path is under 1%.
func BenchmarkWarmDrawAuditOn(b *testing.B) {
	db, err := cdb.Open(benchAuditProgram,
		cdb.WithAudit(cdb.AuditConfig{Interval: 250 * time.Millisecond}))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := db.SampleN(ctx, "U", 64); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SampleNSeeded(ctx, "U", 64, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditorRound: throughput of one full on-demand audit round
// (batch draw, exact-oracle cross-check, verdicts) over one warm entry.
func BenchmarkAuditorRound(b *testing.B) {
	db, err := cdb.Open(benchAuditProgram)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	if _, err := db.SampleN(ctx, "U", 64); err != nil {
		b.Fatal(err)
	}
	if _, err := db.AuditOnce(ctx); err != nil { // compute the oracle once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.AuditOnce(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
