package cdb_test

import (
	"math"
	"testing"

	cdb "repro"
)

func TestSemialgSamplerDisk(t *testing.T) {
	gen, err := cdb.NewSemialgSampler(`x^2 + y^2 <= 1`, []string{"x", "y"},
		cdb.Vector{0, 0}, 1, 1, 42, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p, err := gen.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if p[0]*p[0]+p[1]*p[1] > 1+1e-9 {
			t.Fatalf("sample %v left the disk", p)
		}
	}
	v, err := gen.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Pi)/math.Pi > 0.3 {
		t.Errorf("disk area = %g, want ~π", v)
	}
}

func TestSemialgSamplerParabolicRegion(t *testing.T) {
	// {y >= x², y <= 1}: convex, area 4/3 for x ∈ [−1, 1].
	gen, err := cdb.NewSemialgSampler(`x^2 - y <= 0; y <= 1`, []string{"x", "y"},
		cdb.Vector{0, 0.6}, 0.3, 2, 7, cdb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, err := gen.Volume()
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 3
	if math.Abs(v-want)/want > 0.35 {
		t.Errorf("parabolic region area = %g, want ~%g", v, want)
	}
}

func TestSemialgSamplerRejectsNonConvex(t *testing.T) {
	// Hyperbola branches inside a box: non-convex, the probe must refuse.
	_, err := cdb.NewSemialgSampler(
		`1 - x^2 + y^2 <= 0; x <= 2; -2 <= x; y <= 2; -2 <= y`,
		[]string{"x", "y"}, cdb.Vector{1.5, 0}, 0.1, 4, 3, cdb.DefaultOptions())
	if err == nil {
		t.Error("non-convex body must be rejected by the probe")
	}
}

func TestSemialgSamplerParseError(t *testing.T) {
	if _, err := cdb.NewSemialgSampler(`x^ <= 1`, []string{"x"},
		cdb.Vector{0}, 1, 1, 1, cdb.DefaultOptions()); err == nil {
		t.Error("parse error must propagate")
	}
}
